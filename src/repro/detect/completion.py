"""Completion-time checking — the paper's central dynamic oracle.

Six of the ten Table-1 rows say, in the Testing Notes column, *"Check
completion time of call"*: under deterministic execution the tester knows
at which abstract-clock time each component call must complete, so a call
that completes early (FF-T3, EF-T5, EF-T4), late (EF-T3), or never
(FF-T4, FF-T5, FF-T2) pins down the failure class.

An expectation targets one call occurrence — ``(thread, component,
method, occurrence)`` — and states either an exact clock time, an
inclusive window, or that the call must never complete.  Return-value
expectations ride along, since the same test drivers check outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.vm.events import Event, EventKind
from repro.vm.trace import CallRecord, Trace

from repro.classify.symptoms import Symptom

from repro.run.registry import register_detector

from .online import OnlineDetector, replay

__all__ = [
    "UNSET",
    "Expectation",
    "Violation",
    "CompletionChecker",
    "OnlineCompletionChecker",
    "check_completion_times",
]

_UNSET = object()

#: Public sentinel for "no return-value expectation".
UNSET = _UNSET


@dataclass(frozen=True)
class Expectation:
    """Expected completion behaviour of one call occurrence.

    Attributes:
        thread: name of the calling thread (``None`` matches any).
        component / method: the call to match.
        occurrence: 0-based index among the thread's matching calls.
        at: exact abstract-clock completion time.
        between: inclusive (lo, hi) clock window; overrides ``at``.
        never: the call must NOT complete (e.g. the single-consumer
            receive on an empty buffer must wait forever).
        returns: expected return value (checked only if set).
    """

    component: str
    method: str
    thread: Optional[str] = None
    occurrence: int = 0
    at: Optional[int] = None
    between: Optional[Tuple[int, int]] = None
    never: bool = False
    returns: Any = _UNSET

    def window(self) -> Optional[Tuple[int, int]]:
        if self.between is not None:
            return self.between
        if self.at is not None:
            return (self.at, self.at)
        return None

    def describe(self) -> str:
        who = self.thread or "<any>"
        target = f"{who}:{self.component}.{self.method}[{self.occurrence}]"
        if self.never:
            return f"{target} must never complete"
        window = self.window()
        if window is None:
            return f"{target} must complete (any time)"
        lo, hi = window
        when = f"at clock {lo}" if lo == hi else f"within clock [{lo}, {hi}]"
        return f"{target} must complete {when}"


@dataclass(frozen=True)
class Violation:
    """One completion-time (or return-value) violation."""

    expectation: Expectation
    symptom: Symptom
    actual_clock: Optional[int]
    call: Optional[CallRecord]
    detail: str

    def __str__(self) -> str:
        return f"{self.symptom.value}: {self.expectation.describe()} — {self.detail}"


@register_detector("completion")
class OnlineCompletionChecker(OnlineDetector):
    """Streaming completion-time checking.

    Maintains the call records incrementally — a per-thread stack of open
    calls paired innermost-first, exactly like
    :meth:`repro.vm.trace.Trace.call_records` — plus the clock-tick
    history ``(kernel time, clock value)``, which is all
    :meth:`_clock_at` needs.  Expectations are evaluated in
    :meth:`finish`, since "never completed" is a whole-run property.
    """

    name = "completion"

    def __init__(self, expectations: Sequence[Expectation] = ()) -> None:
        self.expectations = list(expectations)
        self._order: List[CallRecord] = []
        self._open_stacks: Dict[str, List[int]] = {}
        self._ticks: List[Tuple[int, Optional[int]]] = []

    def reset(self) -> None:
        self.__init__(self.expectations)

    def on_event(self, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.CALL_BEGIN:
            record = CallRecord(
                thread=event.thread,
                component=event.component or "?",
                method=event.method or "?",
                begin_seq=event.seq,
                begin_time=event.time,
            )
            self._open_stacks.setdefault(event.thread, []).append(len(self._order))
            self._order.append(record)
        elif kind is EventKind.CALL_END:
            stack = self._open_stacks.get(event.thread, [])
            if not stack:
                return  # unmatched end: tolerated, dropped
            index = stack.pop()
            begun = self._order[index]
            self._order[index] = CallRecord(
                thread=begun.thread,
                component=begun.component,
                method=begun.method,
                begin_seq=begun.begin_seq,
                begin_time=begun.begin_time,
                end_seq=event.seq,
                end_time=event.time,
                result=event.detail.get("result"),
            )
        elif kind is EventKind.CLOCK_TICK:
            self._ticks.append((event.time, event.detail.get("now")))

    def _clock_at(self, kernel_time: int) -> int:
        # Ticks *at* kernel_time count (ties included), matching the batch
        # scan that breaks only on event.time > kernel_time.
        clock = 0
        for tick_time, now in self._ticks:
            if tick_time > kernel_time:
                break
            clock = now if now is not None else clock + 1
        return clock

    def _match(self, exp: Expectation) -> Optional[CallRecord]:
        matching = [
            r
            for r in self._order
            if r.component == exp.component
            and r.method == exp.method
            and (exp.thread is None or r.thread == exp.thread)
        ]
        if exp.occurrence < len(matching):
            return matching[exp.occurrence]
        return None

    def finish(self) -> List[Violation]:
        violations: List[Violation] = []
        for exp in self.expectations:
            call = self._match(exp)
            if call is None or not call.completed:
                if not exp.never:
                    symptom = (
                        Symptom.PERMANENTLY_WAITING
                        if call is not None
                        else Symptom.NEVER_COMPLETES
                    )
                    detail = (
                        "call never completed"
                        if call is not None
                        else "call never began"
                    )
                    violations.append(Violation(exp, symptom, None, call, detail))
                continue
            # The call completed.
            if exp.never:
                clock = self._clock_at(call.end_time or 0)
                violations.append(
                    Violation(
                        exp,
                        Symptom.COMPLETED_EARLY,
                        clock,
                        call,
                        f"expected never to complete, completed at clock {clock}",
                    )
                )
                continue
            window = exp.window()
            clock = self._clock_at(call.end_time or 0)
            if window is not None:
                lo, hi = window
                if clock < lo:
                    violations.append(
                        Violation(
                            exp,
                            Symptom.COMPLETED_EARLY,
                            clock,
                            call,
                            f"completed at clock {clock}, expected >= {lo}",
                        )
                    )
                elif clock > hi:
                    violations.append(
                        Violation(
                            exp,
                            Symptom.COMPLETED_LATE,
                            clock,
                            call,
                            f"completed at clock {clock}, expected <= {hi}",
                        )
                    )
            if exp.returns is not _UNSET and call.result != exp.returns:
                violations.append(
                    Violation(
                        exp,
                        Symptom.DATA_RACE,
                        clock,
                        call,
                        f"returned {call.result!r}, expected {exp.returns!r}",
                    )
                )
        return violations


class CompletionChecker:
    """Check a set of expectations against a trace (batch form of
    :class:`OnlineCompletionChecker`)."""

    def __init__(self, expectations: Sequence[Expectation]) -> None:
        self.expectations = list(expectations)

    def _clock_at(self, trace: Trace, kernel_time: int) -> int:
        clock = 0
        for event in trace:
            if event.time > kernel_time:
                break
            if event.kind is EventKind.CLOCK_TICK:
                clock = event.detail.get("now", clock + 1)
        return clock

    def _match(self, trace: Trace, exp: Expectation) -> Optional[CallRecord]:
        matching = [
            r
            for r in trace.call_records()
            if r.component == exp.component
            and r.method == exp.method
            and (exp.thread is None or r.thread == exp.thread)
        ]
        if exp.occurrence < len(matching):
            return matching[exp.occurrence]
        return None

    def check(self, trace: Trace) -> List[Violation]:
        online = OnlineCompletionChecker(self.expectations)
        replay(trace, online)
        return online.finish()

    def _check_batch(self, trace: Trace) -> List[Violation]:
        """The original trace-scanning implementation, kept as the
        reference the equivalence tests compare :meth:`check` against."""
        violations: List[Violation] = []
        for exp in self.expectations:
            call = self._match(trace, exp)
            if call is None or not call.completed:
                if not exp.never:
                    symptom = (
                        Symptom.PERMANENTLY_WAITING
                        if call is not None
                        else Symptom.NEVER_COMPLETES
                    )
                    detail = (
                        "call never completed"
                        if call is not None
                        else "call never began"
                    )
                    violations.append(Violation(exp, symptom, None, call, detail))
                continue
            # The call completed.
            if exp.never:
                clock = self._clock_at(trace, call.end_time or 0)
                violations.append(
                    Violation(
                        exp,
                        Symptom.COMPLETED_EARLY,
                        clock,
                        call,
                        f"expected never to complete, completed at clock {clock}",
                    )
                )
                continue
            window = exp.window()
            clock = self._clock_at(trace, call.end_time or 0)
            if window is not None:
                lo, hi = window
                if clock < lo:
                    violations.append(
                        Violation(
                            exp,
                            Symptom.COMPLETED_EARLY,
                            clock,
                            call,
                            f"completed at clock {clock}, expected >= {lo}",
                        )
                    )
                elif clock > hi:
                    violations.append(
                        Violation(
                            exp,
                            Symptom.COMPLETED_LATE,
                            clock,
                            call,
                            f"completed at clock {clock}, expected <= {hi}",
                        )
                    )
            if exp.returns is not _UNSET and call.result != exp.returns:
                violations.append(
                    Violation(
                        exp,
                        Symptom.DATA_RACE,
                        clock,
                        call,
                        f"returned {call.result!r}, expected {exp.returns!r}",
                    )
                )
        return violations


def check_completion_times(
    trace: Trace, expectations: Sequence[Expectation]
) -> List[Violation]:
    """Convenience wrapper around :class:`CompletionChecker`."""
    return CompletionChecker(expectations).check(trace)
