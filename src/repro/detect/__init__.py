"""Dynamic concurrency-failure detectors.

Public API::

    from repro.detect import (
        detect_races, LocksetDetector,            # FF-T1
        detect_lock_cycles, build_lock_graph,     # FF-T2/FF-T4 potential
        find_deadlock_cycle, reconstruct_final_state,  # actual deadlock
        analyze_starvation,                       # FF-T2/FF-T5 fairness
        Expectation, check_completion_times,      # the Table-1 oracle
        analyze_run, DetectionReport,             # everything at once
    )
"""

from .contention import ContentionReport, MonitorProfile, profile_contention
from .completion import (
    CompletionChecker,
    Expectation,
    Violation,
    check_completion_times,
)
from .eraser import FieldState, LocksetDetector, RaceReport, detect_races
from .lockgraph import (
    LockOrderEdge,
    PotentialDeadlock,
    build_lock_graph,
    detect_lock_cycles,
)
from .report import DetectionReport, analyze_run
from .starvation import StarvationReport, analyze_starvation
from .vectorclock import HbRace, VectorClock, detect_races_hb
from .waitgraph import WaitForState, find_deadlock_cycle, reconstruct_final_state

__all__ = [
    "CompletionChecker",
    "ContentionReport",
    "MonitorProfile",
    "DetectionReport",
    "Expectation",
    "FieldState",
    "HbRace",
    "LockOrderEdge",
    "LocksetDetector",
    "PotentialDeadlock",
    "RaceReport",
    "StarvationReport",
    "VectorClock",
    "Violation",
    "WaitForState",
    "analyze_run",
    "analyze_starvation",
    "build_lock_graph",
    "check_completion_times",
    "detect_lock_cycles",
    "detect_races",
    "detect_races_hb",
    "profile_contention",
    "find_deadlock_cycle",
    "reconstruct_final_state",
]
