"""Dynamic concurrency-failure detectors.

Public API::

    from repro.detect import (
        detect_races, LocksetDetector,            # FF-T1
        detect_lock_cycles, build_lock_graph,     # FF-T2/FF-T4 potential
        find_deadlock_cycle, reconstruct_final_state,  # actual deadlock
        analyze_starvation,                       # FF-T2/FF-T5 fairness
        Expectation, check_completion_times,      # the Table-1 oracle
        analyze_run, DetectionReport,             # everything at once
        DetectorPipeline, PipelineFactory,        # streaming (online) form
    )

Every batch ``detect_*`` entry point above is a thin wrapper that replays
the trace through the corresponding ``Online*`` detector; attach a
:class:`DetectorPipeline` to a kernel (or wrap a program factory in
:class:`PipelineFactory`) to run the same analyses while the run executes,
with no stored trace at all under ``trace_mode="none"``.
"""

from .online import (
    DetectionSummary,
    DetectorPipeline,
    OnlineDetector,
    PipelineFactory,
    default_detectors,
    replay,
)
from .contention import (
    ContentionReport,
    MonitorProfile,
    OnlineContentionProfiler,
    profile_contention,
)
from .completion import (
    CompletionChecker,
    Expectation,
    OnlineCompletionChecker,
    Violation,
    check_completion_times,
)
from .eraser import (
    FieldState,
    LocksetDetector,
    OnlineLocksetDetector,
    RaceReport,
    detect_races,
)
from .lockgraph import (
    LockOrderEdge,
    OnlineLockGraphDetector,
    PotentialDeadlock,
    build_lock_graph,
    detect_lock_cycles,
)
from .reentry import OnlineReentryDetector, ReentryFinding, detect_reentry
from .report import DetectionReport, analyze_run, assemble_report, dedupe_hb_races
from .starvation import OnlineStarvationDetector, StarvationReport, analyze_starvation
from .vectorclock import HbRace, OnlineHbDetector, VectorClock, detect_races_hb
from .waitgraph import (
    OnlineWaitGraphDetector,
    WaitForState,
    find_deadlock_cycle,
    reconstruct_final_state,
)

__all__ = [
    "CompletionChecker",
    "ContentionReport",
    "MonitorProfile",
    "DetectionReport",
    "DetectionSummary",
    "DetectorPipeline",
    "Expectation",
    "FieldState",
    "HbRace",
    "LockOrderEdge",
    "LocksetDetector",
    "OnlineCompletionChecker",
    "OnlineContentionProfiler",
    "OnlineDetector",
    "OnlineHbDetector",
    "OnlineLockGraphDetector",
    "OnlineLocksetDetector",
    "OnlineReentryDetector",
    "OnlineStarvationDetector",
    "OnlineWaitGraphDetector",
    "PipelineFactory",
    "PotentialDeadlock",
    "RaceReport",
    "ReentryFinding",
    "StarvationReport",
    "VectorClock",
    "Violation",
    "WaitForState",
    "analyze_run",
    "analyze_starvation",
    "assemble_report",
    "build_lock_graph",
    "check_completion_times",
    "dedupe_hb_races",
    "default_detectors",
    "detect_lock_cycles",
    "detect_races",
    "detect_races_hb",
    "detect_reentry",
    "profile_contention",
    "find_deadlock_cycle",
    "reconstruct_final_state",
    "replay",
]
