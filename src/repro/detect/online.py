"""The online-detector protocol and streaming pipeline.

Every batch detector in :mod:`repro.detect` is a fold over the event
stream; this module makes the fold explicit.  An :class:`OnlineDetector`
consumes events one at a time (``on_event``) and produces its findings on
demand (``finish``); the batch entry points (``detect_races``,
``detect_lock_cycles``, ...) are now thin wrappers that :func:`replay` a
stored trace through the online form, so there is exactly one
implementation of each analysis.

:class:`DetectorPipeline` bundles the seven detectors plus the VM-level
:class:`~repro.classify.symptoms.SymptomTracker` behind a single event
sink that plugs into :meth:`repro.vm.kernel.Kernel.subscribe`.  With the
kernel's ``trace_mode="none"``, a run's memory footprint drops from
O(events) to O(detector state) while the pipeline still sees every event
— this is what lets :mod:`repro.engine` campaigns afford full detection
on every run.  A pipeline finding that is already *permanent* (a
wait-for cycle among blocked threads) may abort the run early via
:meth:`~repro.vm.kernel.Kernel.request_abort` instead of burning steps.

Import discipline: the concrete detector modules import this one (for
:class:`OnlineDetector` / :func:`replay`), so this module must only
import them lazily (inside :func:`default_detectors`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.classify.symptoms import SymptomTracker
from repro.vm.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.kernel import Kernel, RunResult
    from repro.vm.scheduler import Scheduler

    from .completion import Expectation
    from .report import DetectionReport

__all__ = [
    "OnlineDetector",
    "replay",
    "default_detectors",
    "DetectorPipeline",
    "DetectionSummary",
    "PipelineFactory",
]


class OnlineDetector:
    """Protocol for a streaming detector.

    Subclasses set :attr:`name` (the key their findings appear under in a
    pipeline), consume events via :meth:`on_event`, and return their
    findings from :meth:`finish`.  ``finish`` must be a pure read of the
    accumulated state (idempotent): pipelines may call it more than once.
    :meth:`abort_reason` lets a detector ask for an early end of the run;
    it must only return a reason for findings that are already permanent
    — aborting cannot un-happen an event, but a transient condition would
    make the early-stopped run diverge from the natural one.
    """

    #: Stable key identifying the detector's findings in pipeline output.
    name: str = "detector"

    def on_event(self, event: Event) -> None:
        raise NotImplementedError

    def finish(self) -> Any:
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the just-constructed state so the instance can be
        reused for another run (the executor resets instead of
        reallocating)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support reset()"
        )

    def abort_reason(self) -> Optional[str]:
        """A reason to end the run early, or None to keep going."""
        return None


def replay(events: Iterable[Event], detector: OnlineDetector) -> OnlineDetector:
    """Feed every event to the detector; returns the detector for
    chaining (``replay(trace, D()).finish()`` is the batch idiom)."""
    for event in events:
        detector.on_event(event)
    return detector


def default_detectors(
    expectations: Sequence["Expectation"] = (),
    bypass_threshold: int = 3,
) -> List[OnlineDetector]:
    """One instance of each of the seven detectors, in report order."""
    from .completion import OnlineCompletionChecker
    from .contention import OnlineContentionProfiler
    from .eraser import OnlineLocksetDetector
    from .lockgraph import OnlineLockGraphDetector
    from .starvation import OnlineStarvationDetector
    from .vectorclock import OnlineHbDetector
    from .waitgraph import OnlineWaitGraphDetector

    return [
        OnlineLocksetDetector(),
        OnlineHbDetector(),
        OnlineLockGraphDetector(),
        OnlineWaitGraphDetector(),
        OnlineStarvationDetector(bypass_threshold=bypass_threshold),
        OnlineContentionProfiler(),
        OnlineCompletionChecker(expectations),
    ]


@dataclass(frozen=True)
class DetectionSummary:
    """Compact, picklable projection of a :class:`DetectionReport`.

    This is what engine workers stream back to the campaign aggregator:
    finding *counts* per detector plus the implicated Table-1 failure
    class codes, not the full report objects (which hold event records
    that do not exist under ``trace_mode="none"`` anyway).
    """

    races: int = 0
    hb_races: int = 0
    potential_deadlocks: int = 0
    deadlock_cycle: Tuple[str, ...] = ()
    starvation: int = 0
    completion_violations: int = 0
    reentry: int = 0
    #: primary failure-class codes (e.g. ``"FF-T4"``), diagnosis order
    classes: Tuple[str, ...] = ()
    #: the early-abort reason when the pipeline stopped the run
    aborted: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not (
            self.races
            or self.hb_races
            or self.potential_deadlocks
            or self.deadlock_cycle
            or self.starvation
            or self.completion_violations
            or self.reentry
            or self.classes
        )

    @classmethod
    def from_report(
        cls, report: "DetectionReport", aborted: Optional[str] = None
    ) -> "DetectionSummary":
        return cls(
            races=len(report.races),
            hb_races=len(report.hb_races),
            potential_deadlocks=len(report.potential_deadlocks),
            deadlock_cycle=tuple(report.deadlock_cycle),
            starvation=len(report.starvation),
            completion_violations=len(report.completion_violations),
            reentry=len(report.reentry),
            classes=tuple(c.code for c in report.classes_detected()),
            aborted=aborted,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "races": self.races,
            "hb_races": self.hb_races,
            "potential_deadlocks": self.potential_deadlocks,
            "deadlock_cycle": list(self.deadlock_cycle),
            "starvation": self.starvation,
            "completion_violations": self.completion_violations,
            "reentry": self.reentry,
            "classes": list(self.classes),
            "aborted": self.aborted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DetectionSummary":
        return cls(
            races=int(data.get("races", 0)),
            hb_races=int(data.get("hb_races", 0)),
            potential_deadlocks=int(data.get("potential_deadlocks", 0)),
            deadlock_cycle=tuple(data.get("deadlock_cycle", ())),
            starvation=int(data.get("starvation", 0)),
            completion_violations=int(data.get("completion_violations", 0)),
            reentry=int(data.get("reentry", 0)),
            classes=tuple(data.get("classes", ())),
            aborted=data.get("aborted"),
        )


class DetectorPipeline:
    """A set of online detectors behind one kernel event sink.

    Args:
        detectors: the detectors to run; defaults to
            :func:`default_detectors` (all seven).
        expectations: completion-time expectations for the default set.
        bypass_threshold: starvation threshold for the default set.
        early_stop: honour detector :meth:`~OnlineDetector.abort_reason`
            by asking the attached kernel to end the run early.
    """

    def __init__(
        self,
        detectors: Optional[Sequence[OnlineDetector]] = None,
        *,
        expectations: Sequence["Expectation"] = (),
        bypass_threshold: int = 3,
        early_stop: bool = True,
    ) -> None:
        self.detectors: List[OnlineDetector] = (
            list(detectors)
            if detectors is not None
            else default_detectors(expectations, bypass_threshold)
        )
        self.symptoms = SymptomTracker()
        self.early_stop = early_stop
        #: the abort reason this pipeline raised, if any
        self.aborted: Optional[str] = None
        self.events_seen = 0
        self._kernel: Optional["Kernel"] = None

    def attach(self, kernel: "Kernel") -> "DetectorPipeline":
        """Subscribe to a kernel's event bus; returns self for chaining."""
        self._kernel = kernel
        kernel.subscribe(self.on_event)
        return self

    def reset(self) -> "DetectorPipeline":
        """Reset every detector and the symptom tracker for the next run
        (same observable behaviour as constructing a fresh pipeline, minus
        the per-run allocation); returns self for chaining."""
        for detector in self.detectors:
            detector.reset()
        self.symptoms.reset()
        self.aborted = None
        self.events_seen = 0
        self._kernel = None
        return self

    def on_event(self, event: Event) -> None:
        self.events_seen += 1
        self.symptoms.on_event(event)
        for detector in self.detectors:
            detector.on_event(event)
        if self.early_stop and self.aborted is None:
            for detector in self.detectors:
                reason = detector.abort_reason()
                if reason is not None:
                    self.aborted = reason
                    if self._kernel is not None:
                        self._kernel.request_abort(reason)
                    break

    def findings(self) -> Dict[str, Any]:
        """Raw findings keyed by detector name."""
        return {detector.name: detector.finish() for detector in self.detectors}

    def report(self, result: "RunResult") -> "DetectionReport":
        """Assemble the full :class:`DetectionReport` for a finished run.

        Works under ``trace_mode="none"``: everything the report needs
        was accumulated online; ``result`` only contributes final thread
        states and the run status.
        """
        from .report import assemble_report

        found = self.findings()
        return assemble_report(
            result,
            races=found.get("lockset", []),
            hb_races=found.get("hb", []),
            potential_deadlocks=found.get("lockgraph", []),
            deadlock_cycle=found.get("waitgraph", []),
            starvation=found.get("starvation", []),
            completion_violations=found.get("completion", []),
            observations=self.symptoms.observations(result),
            contention=found.get("contention"),
            reentry=found.get("reentry", []),
        )

    def summary(self, result: "RunResult") -> DetectionSummary:
        """The compact summary engine workers ship across processes."""
        return DetectionSummary.from_report(self.report(result), aborted=self.aborted)


class PipelineFactory:
    """Wrap a program factory so every kernel it builds streams into a
    fresh :class:`DetectorPipeline`.

    The engine's ``ProgramFactory`` contract is ``factory(scheduler) ->
    Kernel``; this class satisfies it while setting the kernel's
    ``trace_mode`` and attaching the pipeline, so exploration and
    campaign code can detect on every run without touching traces.  The
    pipeline of the most recently built kernel is at :attr:`pipeline`
    (runs are sequential within a worker, so one slot suffices).
    """

    def __init__(
        self,
        factory: Callable[["Scheduler"], "Kernel"],
        *,
        trace_mode: str = "full",
        early_stop: bool = True,
        expectations: Sequence["Expectation"] = (),
        bypass_threshold: int = 3,
        detectors: Optional[Callable[[], Sequence[OnlineDetector]]] = None,
    ) -> None:
        self.factory = factory
        self.trace_mode = trace_mode
        self.early_stop = early_stop
        self.expectations = tuple(expectations)
        self.bypass_threshold = bypass_threshold
        self._detectors_factory = detectors
        self.pipeline: Optional[DetectorPipeline] = None

    def __call__(self, scheduler: "Scheduler") -> "Kernel":
        kernel = self.factory(scheduler)
        if kernel.trace_mode != self.trace_mode:
            if self.trace_mode not in kernel.TRACE_MODES:
                raise ValueError(
                    f"trace_mode must be one of {kernel.TRACE_MODES}, "
                    f"got {self.trace_mode!r}"
                )
            kernel.trace_mode = self.trace_mode
        fresh = (
            list(self._detectors_factory())
            if self._detectors_factory is not None
            else None
        )
        self.pipeline = DetectorPipeline(
            fresh,
            expectations=self.expectations,
            bypass_threshold=self.bypass_threshold,
            early_stop=self.early_stop,
        )
        self.pipeline.attach(kernel)
        return kernel
