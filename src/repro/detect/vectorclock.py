"""Happens-before (vector-clock) data-race detection.

A precision upgrade over the lockset algorithm (:mod:`repro.detect.eraser`):
lockset reports any inconsistently-locked shared access, which flags
benign patterns that are ordered by other synchronization (e.g. hand-offs
through a monitor the field itself is not guarded by).  Happens-before
analysis in the FastTrack/DJIT+ tradition reports exactly the access
pairs with *no ordering at all* — at least one write, neither access
happens-before the other.

Happens-before edges recovered from a VM trace:

* program order within each thread;
* monitor release -> subsequent acquire of the same monitor (including
  the release performed by ``wait`` and the reacquisition after notify);
* ``notify``/``notifyAll`` -> the wakeup of each woken thread;
* thread start: spawn order gives no edge (threads are roots), matching
  the component-testing assumption of concurrent client threads.

The Ext-F bench compares lockset and happens-before verdicts on the
faulty components and on a benign-handoff component that lockset
overreports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.vm.events import Event, EventKind
from repro.vm.trace import Trace

from repro.run.registry import register_detector

from .online import OnlineDetector, replay

__all__ = ["VectorClock", "HbRace", "OnlineHbDetector", "detect_races_hb"]


class VectorClock:
    """A sparse integer vector clock keyed by thread name."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Optional[Dict[str, int]] = None) -> None:
        self._clocks: Dict[str, int] = dict(clocks or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def get(self, thread: str) -> int:
        return self._clocks.get(thread, 0)

    def tick(self, thread: str) -> None:
        self._clocks[thread] = self._clocks.get(thread, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for thread, clock in other._clocks.items():
            if clock > self._clocks.get(thread, 0):
                self._clocks[thread] = clock

    def happens_before(self, other: "VectorClock") -> bool:
        """True when self <= other componentwise (and they differ —
        equality also counts as ordered for race purposes)."""
        return all(
            clock <= other._clocks.get(thread, 0)
            for thread, clock in self._clocks.items()
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{c}" for t, c in sorted(self._clocks.items()))
        return f"VC({{{inner}}})"


@dataclass(frozen=True)
class HbRace:
    """An unordered conflicting access pair on ``component.field``."""

    component: str
    field: str
    first_thread: str
    first_seq: int
    first_is_write: bool
    second_thread: str
    second_seq: int
    second_is_write: bool

    def __str__(self) -> str:
        kinds = (
            ("write" if self.first_is_write else "read"),
            ("write" if self.second_is_write else "read"),
        )
        return (
            f"happens-before race on {self.component}.{self.field}: "
            f"{kinds[0]} by {self.first_thread!r} (seq {self.first_seq}) is "
            f"unordered with {kinds[1]} by {self.second_thread!r} "
            f"(seq {self.second_seq})"
        )


@dataclass
class _Epoch:
    """Last access bookkeeping for one field."""

    last_write_vc: Optional[VectorClock] = None
    last_write_thread: Optional[str] = None
    last_write_seq: int = -1
    # reads since the last write: thread -> (vc, seq)
    reads: Dict[str, Tuple[VectorClock, int]] = field(default_factory=dict)


@register_detector("hb")
class OnlineHbDetector(OnlineDetector):
    """Streaming vector-clock race detection (FastTrack-style)."""

    name = "hb"

    def __init__(self, max_reports: int = 100) -> None:
        self.max_reports = max_reports
        self._thread_vc: Dict[str, VectorClock] = {}
        self._monitor_vc: Dict[str, VectorClock] = {}
        self._notify_vc: Dict[Tuple[str, str], VectorClock] = {}  # (monitor, woken)
        self._fields: Dict[Tuple[str, str], _Epoch] = {}
        self.races: List[HbRace] = []

    def reset(self) -> None:
        self.__init__(self.max_reports)

    def _vc_of(self, thread: str) -> VectorClock:
        if thread not in self._thread_vc:
            self._thread_vc[thread] = VectorClock({thread: 1})
        return self._thread_vc[thread]

    def on_event(self, event: Event) -> None:
        thread = event.thread
        vc = self._vc_of(thread)
        kind = event.kind

        if kind is EventKind.MONITOR_ACQUIRE:
            released = self._monitor_vc.get(event.monitor)
            if released is not None:
                vc.join(released)
            vc.tick(thread)
        elif kind in (EventKind.MONITOR_RELEASE, EventKind.MONITOR_WAIT):
            # wait releases the lock exactly like a release does
            self._monitor_vc.setdefault(event.monitor, VectorClock()).join(vc)
            vc.tick(thread)
        elif kind in (EventKind.NOTIFY, EventKind.NOTIFY_ALL):
            for woken in event.detail.get("woken", []):
                self._notify_vc[(event.monitor, woken)] = vc.copy()
            vc.tick(thread)
        elif kind is EventKind.MONITOR_NOTIFIED:
            sent = self._notify_vc.pop((event.monitor, thread), None)
            if sent is not None:
                vc.join(sent)
            vc.tick(thread)
        elif kind in (EventKind.READ, EventKind.WRITE):
            key = (event.component or "?", event.detail.get("field", "?"))
            epoch = self._fields.setdefault(key, _Epoch())
            is_write = kind is EventKind.WRITE
            # conflict with the last write
            if (
                epoch.last_write_vc is not None
                and epoch.last_write_thread != thread
                and not epoch.last_write_vc.happens_before(vc)
                and len(self.races) < self.max_reports
            ):
                self.races.append(
                    HbRace(
                        component=key[0],
                        field=key[1],
                        first_thread=epoch.last_write_thread or "?",
                        first_seq=epoch.last_write_seq,
                        first_is_write=True,
                        second_thread=thread,
                        second_seq=event.seq,
                        second_is_write=is_write,
                    )
                )
            if is_write:
                # a write also conflicts with unordered prior reads
                for reader, (read_vc, read_seq) in epoch.reads.items():
                    if (
                        reader != thread
                        and not read_vc.happens_before(vc)
                        and len(self.races) < self.max_reports
                    ):
                        self.races.append(
                            HbRace(
                                component=key[0],
                                field=key[1],
                                first_thread=reader,
                                first_seq=read_seq,
                                first_is_write=False,
                                second_thread=thread,
                                second_seq=event.seq,
                                second_is_write=True,
                            )
                        )
                epoch.last_write_vc = vc.copy()
                epoch.last_write_thread = thread
                epoch.last_write_seq = event.seq
                epoch.reads.clear()
            else:
                epoch.reads[thread] = (vc.copy(), event.seq)
            vc.tick(thread)

    def finish(self) -> List[HbRace]:
        return list(self.races)


def detect_races_hb(trace: Trace, max_reports: int = 100) -> List[HbRace]:
    """Vector-clock race detection over a whole trace (replays the stored
    events through :class:`OnlineHbDetector`)."""
    return replay(trace, OnlineHbDetector(max_reports=max_reports)).finish()
