"""On-disk campaign checkpoint: a JSONL journal of completed shards.

One header line identifying the campaign (a fingerprint of every
schedule-space-defining spec field), then one line per *completed* shard
carrying its run summaries.  Partial shards are never journaled — a
shard is the atomic unit of progress — so a campaign killed mid-flight
loses at most the shards in progress, and ``--resume`` replays nothing
that was journaled.

Robustness decisions:

* every shard line is flushed (and fsync'd) before the orchestrator
  counts the shard as durable, so ``kill -9`` cannot lose acknowledged
  work;
* a torn final line (the process died mid-write) is detected by the JSON
  parse failing and silently dropped on load — the shard it described
  simply re-runs;
* resuming against a journal whose fingerprint differs from the spec is
  an error, not a silent restart: a different spec means a different
  shard plan, and shard ids would collide meaninglessly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.testing.explorer import RunSummary

__all__ = ["CampaignJournal", "JournalState", "JournalError"]

_FORMAT = "repro-campaign"
_VERSION = 1


class JournalError(ValueError):
    """The journal file does not match the campaign trying to use it."""


class JournalState:
    """Parsed journal contents: which shards completed, with what runs."""

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.shards: Dict[str, List[RunSummary]] = {}
        #: per-shard "this subtree was fully enumerated" flags
        #: (systematic mode only; seed shards record False).
        self.exhausted: Dict[str, bool] = {}

    @property
    def n_runs(self) -> int:
        return sum(len(s) for s in self.shards.values())


class CampaignJournal:
    """Append-only JSONL checkpoint for one campaign."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -----------------------------------------------------------

    def start(self, fingerprint: str, meta: Optional[dict] = None) -> None:
        """Begin a fresh journal (truncating any previous one)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        header = {
            "format": _FORMAT,
            "version": _VERSION,
            "fingerprint": fingerprint,
        }
        if meta:
            header["meta"] = meta
        self._write_line(header)

    def resume(self, fingerprint: str) -> JournalState:
        """Load an existing journal (verifying the fingerprint) and
        reopen it for appending; starts fresh if the file is absent."""
        if not self.exists():
            self.start(fingerprint)
            return JournalState(fingerprint)
        state = self.load()
        if state.fingerprint != fingerprint:
            raise JournalError(
                f"journal {self.path} was written by a different campaign "
                f"(fingerprint {state.fingerprint[:12]}… != {fingerprint[:12]}…); "
                f"delete it or change --journal"
            )
        self._handle = self.path.open("a")
        return state

    def append_shard(
        self,
        shard_id: str,
        summaries: List[RunSummary],
        exhausted: bool = False,
    ) -> None:
        """Durably record one completed shard."""
        if self._handle is None:
            raise JournalError("journal not opened (call start() or resume())")
        self._write_line(
            {
                "shard": shard_id,
                "n": len(summaries),
                "exhausted": exhausted,
                "summaries": [s.to_dict() for s in summaries],
            }
        )

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -----------------------------------------------------------

    def load(self) -> JournalState:
        """Parse the journal, tolerating a torn trailing line."""
        lines = self.path.read_text().splitlines()
        if not lines:
            raise JournalError(f"journal {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise JournalError(f"journal {self.path} has a corrupt header")
        if header.get("format") != _FORMAT:
            raise JournalError(f"{self.path} is not a campaign journal")
        if header.get("version") != _VERSION:
            raise JournalError(
                f"unsupported journal version {header.get('version')!r}"
            )
        state = JournalState(str(header.get("fingerprint", "")))
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: the write died with the process
            shard_id = record.get("shard")
            if shard_id is None:
                continue
            state.shards[str(shard_id)] = [
                RunSummary.from_dict(s) for s in record.get("summaries", ())
            ]
            state.exhausted[str(shard_id)] = bool(record.get("exhausted", False))
        return state
