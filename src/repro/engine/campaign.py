"""Campaign orchestration: parallel, resumable schedule exploration.

A *campaign* is a budgeted sweep of a program's schedule space — the
paper's "how many schedules until the bug shows?" question (Section 6 /
Ext-B) run at scale.  The orchestrator:

* plans the schedule space into :class:`~repro.engine.shards.Shard`\\ s
  (seed ranges for random/PCT, DFS prefix partitions for systematic);
* fans shards out over a ``multiprocessing`` worker pool with crash
  isolation — a worker that dies or hangs marks its shard failed and the
  shard is requeued with bounded retries;
* merges streamed :class:`~repro.testing.explorer.RunSummary` messages,
  deduping by decision-sequence hash and folding per-arc coverage hits
  into one mergeable :class:`~repro.coverage.matrix.CoverageMatrix`;
* stops early on configurable goals (first failure, full arc coverage)
  and journals every completed shard to a JSONL checkpoint so a killed
  campaign resumes without re-executing journaled work;
* reports every distinct failure as a *replayable artifact* — a seed or
  decision sequence that ``repro explore`` (via the VM's
  ``ReplayScheduler``) reproduces in one command.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.obs.live.frames import TelemetryFrame
from repro.obs.metrics import Counter as MetricsCounter
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.run.config import DETECTOR_ORDER, RunConfig, RunConfigError, _coerce_faults
from repro.testing.explorer import RunSummary, wilson_interval
from repro.vm.kernel import RunStatus

from .journal import CampaignJournal
from .progress import ProgressTracker
from .shards import Shard, plan_seed_shards, plan_systematic_shards
from .worker import WorkerTask, execute_shard, worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.live.aggregate import LiveAggregator

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "CampaignResult",
    "ReplayArtifact",
    "run_campaign",
]

_MODES = ("random", "pct", "systematic")
_GOALS = ("budget", "first-failure", "first-deadlock", "coverage")
_TRACE_MODES = ("full", "none")

#: Pseudo shard id for the systematic planner's own expansion runs.
PLAN_SHARD_ID = "plan"

#: Relaunch backoff for crash-requeued shards: base * 2^(attempt-1)
#: seconds, capped — a shard that keeps killing its worker (OOM, native
#: crash) must not hog a pool slot in a tight relaunch loop.
_REQUEUE_BACKOFF_BASE = 0.5
_REQUEUE_BACKOFF_CAP = 15.0


class CampaignError(ValueError):
    """A campaign spec or journal is unusable."""


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that defines a campaign.

    The *schedule space* fields (everything except ``workers``,
    ``run_timeout``, ``max_retries``, and ``journal_path``) are hashed
    into the fingerprint that guards ``--resume``: you may resume with a
    different worker count or timeout, but not a different space.
    """

    factory: str
    mode: str = "random"
    budget: int = 200
    workers: int = 1
    shard_size: int = 25
    seed_start: int = 0
    goal: str = "budget"
    coverage: Optional[str] = None  # "module:Class" whose CoFG arcs to track
    #: run the streaming detector pipeline on every run
    detect: bool = False
    #: explicit detector names for the pipeline (overrides the default
    #: set when non-empty; implies ``detect``) — how corpus sweeps opt
    #: into the ``"reentry"`` detector without changing ``"all"``
    detectors: Tuple[str, ...] = ()
    #: kernel trace retention ("full" | "none"); "none" requires detect
    trace_mode: str = "full"
    #: attach an instrumentation sink to every run (per-run
    #: MetricsSnapshot rides inside each RunSummary and the journal)
    metrics: bool = False
    run_timeout: float = 10.0
    max_retries: int = 2
    max_depth: int = 400
    branch: str = "shallow"
    pct_depth: int = 3
    pct_expected_steps: int = 200
    journal_path: Optional[str] = None
    #: write the merged campaign registry here as metrics JSONL
    metrics_out: Optional[str] = None
    #: write the merged campaign registry here as Prometheus text
    metrics_prom: Optional[str] = None
    #: component registry name, for template workloads (``factory="pc"``)
    component: Optional[str] = None
    #: per-step spurious wake-up probability for every run (0.0 = off)
    spurious_rate: float = 0.0
    #: deterministic fault plan injected into every run (a
    #: :class:`~repro.faults.FaultPlan`, its dict form, or a plan name)
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        # Asking for a metrics export implies collecting metrics: the old
        # behaviour (error without --metrics) made the flag pair a trap.
        if (self.metrics_out or self.metrics_prom) and not self.metrics:
            object.__setattr__(self, "metrics", True)
        if self.detectors and not self.detect:
            object.__setattr__(self, "detect", True)
        try:
            object.__setattr__(self, "faults", _coerce_faults(self.faults))
        except RunConfigError as exc:
            raise CampaignError(str(exc)) from None

    def validate(self) -> None:
        if self.mode not in _MODES:
            raise CampaignError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.goal not in _GOALS:
            raise CampaignError(f"goal must be one of {_GOALS}, got {self.goal!r}")
        if self.goal == "coverage" and not self.coverage:
            raise CampaignError("goal 'coverage' requires a coverage component")
        if self.budget <= 0:
            raise CampaignError(f"budget must be positive, got {self.budget}")
        if self.shard_size <= 0:
            raise CampaignError(f"shard_size must be positive, got {self.shard_size}")
        if self.workers < 0:
            raise CampaignError(f"workers must be >= 0, got {self.workers}")
        # Everything run-shaped (workload/component/detector names,
        # trace_mode, coverage coupling) is the run layer's business.
        try:
            self.run_config().validate()
        except RunConfigError as exc:
            raise CampaignError(str(exc)) from None

    def fingerprint(self) -> str:
        """Stable hash of the schedule-space-defining fields."""
        space = {
            "factory": self.factory,
            "mode": self.mode,
            "budget": self.budget,
            "shard_size": self.shard_size,
            "seed_start": self.seed_start,
            "goal": self.goal,
            "coverage": self.coverage,
            # detection is part of the space: it decides what the journal
            # records, and early aborts change how far each run executes
            "detect": self.detect,
            "trace_mode": self.trace_mode,
            # metrics likewise decides what journal lines carry, so a
            # resumed campaign must agree on it
            "metrics": self.metrics,
            "max_depth": self.max_depth,
            "branch": self.branch,
            "pct_depth": self.pct_depth,
            "pct_expected_steps": self.pct_expected_steps,
        }
        if self.component is not None:
            # only fingerprinted when set, so pre-existing journals (from
            # before template workloads) still resume cleanly
            space["component"] = self.component
        if self.detectors:
            # same backwards-compatible pattern as component above
            space["detectors"] = list(self.detectors)
        if self.spurious_rate:
            # the environment is part of the schedule space: resuming with
            # a different rate (or plan) would mix incompatible runs
            space["spurious_rate"] = self.spurious_rate
        if self.faults is not None:
            space["faults"] = self.faults.fingerprint_key()
        raw = json.dumps(space, sort_keys=True)
        return hashlib.sha256(raw.encode()).hexdigest()

    def run_config(self) -> RunConfig:
        """The run-layer view of this campaign: how every run in every
        shard is assembled (shipped to workers inside each WorkerTask)."""
        return RunConfig(
            workload=self.factory,
            component=self.component,
            scheduler=self.mode,
            detect=self.detectors if self.detectors else self.detect,
            trace_mode=self.trace_mode,
            metrics=self.metrics,
            timeout=self.run_timeout,
            coverage=self.coverage,
            max_depth=self.max_depth,
            branch=self.branch,
            pct_depth=self.pct_depth,
            pct_expected_steps=self.pct_expected_steps,
            spurious_rate=self.spurious_rate,
            faults=self.faults,
        )

    @classmethod
    def from_run_config(cls, config: RunConfig, **kwargs: Any) -> "CampaignSpec":
        """Build a campaign over a :class:`RunConfig` (the scenario-file
        path); ``kwargs`` are the campaign-level fields (budget, workers,
        goal, journal_path, ...)."""
        mode = config.scheduler if config.scheduler in _MODES else "random"
        # A custom detector set (anything but off / the full default set)
        # must survive the round trip; the default set stays spelled as
        # ``detect=True`` so existing journals keep their fingerprint.
        custom = (
            config.detect
            if config.detect and set(config.detect) != set(DETECTOR_ORDER)
            else ()
        )
        return cls(
            factory=config.workload,
            component=config.component,
            mode=mode,
            detect=bool(config.detect),
            detectors=custom,
            trace_mode=config.trace_mode,
            metrics=config.metrics,
            run_timeout=config.timeout,
            coverage=config.coverage,
            max_depth=config.max_depth,
            branch=config.branch,
            pct_depth=config.pct_depth,
            pct_expected_steps=config.pct_expected_steps,
            spurious_rate=config.spurious_rate,
            faults=config.faults,
            **kwargs,
        )

    def worker_task(self, shard: Shard) -> WorkerTask:
        return WorkerTask(
            shard=shard,
            config=self.run_config(),
            stop_on_failure=(self.goal == "first-failure"),
        )


@dataclass(frozen=True)
class ReplayArtifact:
    """A one-command reproduction recipe for an observed failure."""

    signature: Tuple[str, Tuple[str, ...]]
    seed: Optional[int]
    decisions: Tuple[int, ...]
    mode: str
    factory: str
    pct_depth: int = 3
    pct_expected_steps: int = 200
    component: Optional[str] = None
    spurious_rate: float = 0.0
    faults_name: Optional[str] = None

    def command(self) -> str:
        """The ``repro explore`` invocation that reproduces this failure
        deterministically (seed replay for random/PCT, exact
        decision-index replay via ReplayScheduler otherwise)."""
        target = self.factory
        if self.component:
            target += f" --component {self.component}"
        if self.spurious_rate:
            target += f" --spurious-rate {self.spurious_rate}"
        if self.faults_name:
            target += f" --faults {self.faults_name}"
        if self.mode == "random" and self.seed is not None:
            return (
                f"python -m repro explore {target} "
                f"--mode random --seeds {self.seed}"
            )
        if self.mode == "pct" and self.seed is not None:
            return (
                f"python -m repro explore {target} --mode pct "
                f"--seeds {self.seed} --pct-depth {self.pct_depth} "
                f"--pct-steps {self.pct_expected_steps}"
            )
        decisions = ",".join(str(d) for d in self.decisions)
        return (
            f"python -m repro explore {target} "
            f"--mode replay --decisions {decisions}"
        )


@dataclass
class CampaignResult:
    """Merged outcome of a campaign (unique schedules only)."""

    spec: CampaignSpec
    summaries: List[RunSummary] = field(default_factory=list)
    duplicates: int = 0
    shards_total: int = 0
    shards_completed: int = 0
    shards_failed: List[str] = field(default_factory=list)
    shards_resumed: int = 0
    shards_requeued: int = 0
    exhausted: bool = False
    goal_reached: Optional[str] = None
    wall_time: float = 0.0
    coverage: Optional[Any] = None  # CoverageMatrix when tracked
    #: failure-class code -> number of unique schedules implicating it
    #: (populated only when the spec ran with ``detect=True``)
    class_counts: Counter = field(default_factory=Counter)
    #: merged per-run metrics (unique schedules only; populated only when
    #: the spec ran with ``metrics=True``)
    metrics: Optional[MetricsRegistry] = None

    @property
    def n_runs(self) -> int:
        """Unique schedules merged (journaled + fresh)."""
        return len(self.summaries)

    @property
    def n_executed(self) -> int:
        """All run executions, including duplicate schedules."""
        return len(self.summaries) + self.duplicates

    def statuses(self) -> Counter:
        return Counter(s.status for s in self.summaries)

    def failures(self) -> List[RunSummary]:
        return [s for s in self.summaries if not s.ok]

    def distinct_failure_signatures(self) -> List[Tuple[str, Tuple[str, ...]]]:
        seen: Dict[Tuple[str, Tuple[str, ...]], None] = {}
        for s in self.failures():
            seen.setdefault(s.signature)
        return list(seen)

    def failure_rate(self) -> float:
        if not self.summaries:
            return 0.0
        return len(self.failures()) / len(self.summaries)

    def failure_rate_interval(self, z: float = 1.96) -> Tuple[float, float]:
        return wilson_interval(len(self.failures()), len(self.summaries), z)

    def first_failure(self) -> Optional[RunSummary]:
        for s in self.summaries:
            if not s.ok:
                return s
        return None

    def replay_artifacts(self) -> List[ReplayArtifact]:
        """One replay recipe per distinct failure signature (the first
        summary observed with that signature)."""
        artifacts: Dict[Tuple[str, Tuple[str, ...]], ReplayArtifact] = {}
        for s in self.failures():
            if s.signature in artifacts:
                continue
            artifacts[s.signature] = ReplayArtifact(
                signature=s.signature,
                seed=s.seed,
                decisions=s.decisions,
                mode=self.spec.mode if s.seed is not None else "systematic",
                factory=self.spec.factory,
                pct_depth=self.spec.pct_depth,
                pct_expected_steps=self.spec.pct_expected_steps,
                component=self.spec.component,
                spurious_rate=self.spec.spurious_rate,
                faults_name=(
                    self.spec.faults.name if self.spec.faults is not None else None
                ),
            )
        return list(artifacts.values())

    def coverage_fraction(self) -> Optional[float]:
        if self.coverage is None:
            return None
        return self.coverage.coverage_fraction()

    def build_metrics(self) -> MetricsRegistry:
        """Campaign-level registry: the merged per-run series plus the
        campaign's own counters (``campaign_runs_total`` by status,
        duplicates, failure classes, shard accounting, throughput).

        Pure: builds a fresh registry each call, leaving :attr:`metrics`
        untouched — safe to call repeatedly (exporters, tests).
        """
        registry = MetricsRegistry()
        if self.metrics is not None:
            registry.merge(self.metrics)
        runs = registry.counter(
            "campaign_runs_total", "unique schedules merged, by run status"
        )
        for status, count in self.statuses().items():
            runs.inc(count, status=status)
        registry.counter(
            "campaign_duplicate_schedules_total",
            "runs discarded as duplicate schedules",
        ).inc(self.duplicates)
        classes = registry.counter(
            "campaign_failure_classes_total",
            "unique schedules implicating each Table-1 failure class",
        )
        for code, count in self.class_counts.items():
            classes.inc(count, failure_class=code)
        shards = registry.counter(
            "campaign_shards_total", "shard dispositions across the campaign"
        )
        shards.inc(self.shards_completed, state="completed")
        shards.inc(len(self.shards_failed), state="failed")
        shards.inc(self.shards_requeued, state="requeued")
        shards.inc(self.shards_resumed, state="resumed")
        if self.wall_time > 0:
            registry.gauge(
                "campaign_runs_per_second",
                "overall campaign throughput (executed runs / wall time)",
                agg="last",
            ).set(self.n_executed / self.wall_time)
        from repro.obs.live.aggregate import attach_campaign_info

        attach_campaign_info(
            registry,
            {
                "fingerprint": self.spec.fingerprint(),
                "factory": self.spec.factory,
                "mode": self.spec.mode,
            },
            self.shards_total,
        )
        return registry

    def describe(self) -> str:
        status_counts = ", ".join(
            f"{status}: {count}" for status, count in sorted(self.statuses().items())
        )
        lines = [
            f"campaign {self.spec.factory!r} mode={self.spec.mode} "
            f"budget={self.spec.budget} workers={self.spec.workers}"
            + (" (exhaustive)" if self.exhausted else ""),
            f"  runs: {self.n_executed} executed, {self.n_runs} unique schedules"
            + (f" ({self.duplicates} duplicates)" if self.duplicates else ""),
            f"  outcomes: {status_counts or 'none'}",
        ]
        n_failures = len(self.failures())
        if self.summaries:
            lo, hi = self.failure_rate_interval()
            lines.append(
                f"  failures: {n_failures} ({self.failure_rate():.1%}), "
                f"{len(self.distinct_failure_signatures())} distinct signature(s), "
                f"95% CI [{lo:.1%}, {hi:.1%}]"
            )
        if self.class_counts:
            class_bits = ", ".join(
                f"{code}: {count}"
                for code, count in sorted(self.class_counts.items())
            )
            lines.append(f"  failure classes: {class_bits}")
        elif self.spec.detect:
            lines.append("  failure classes: none detected")
        frac = self.coverage_fraction()
        if frac is not None:
            full_at = self.coverage.runs_to_full_coverage()
            lines.append(
                f"  coverage: {frac:.0%} of CoFG arcs"
                + (f" (full after {full_at} runs)" if full_at else "")
            )
        shard_bit = (
            f"  shards: {self.shards_completed}/{self.shards_total} completed"
        )
        extras = []
        if self.shards_resumed:
            extras.append(f"{self.shards_resumed} resumed")
        if self.shards_requeued:
            extras.append(f"{self.shards_requeued} requeued")
        if self.shards_failed:
            extras.append(f"{len(self.shards_failed)} failed")
        if extras:
            shard_bit += f" ({', '.join(extras)})"
        lines.append(shard_bit)
        rate = self.n_executed / self.wall_time if self.wall_time > 0 else 0.0
        lines.append(f"  wall time: {self.wall_time:.2f}s ({rate:.1f} runs/s)")
        if self.goal_reached:
            lines.append(f"  goal reached: {self.goal_reached}")
        for artifact in self.replay_artifacts():
            status, stuck = artifact.signature
            stuck_bit = f" (stuck: {', '.join(stuck)})" if stuck else ""
            lines.append(f"  failure {status}{stuck_bit} — replay:")
            lines.append(f"    {artifact.command()}")
        return "\n".join(lines)


class _Aggregator:
    """Merges run summaries: dedupe by schedule hash, fold coverage.

    When a :class:`~repro.obs.live.aggregate.LiveAggregator` is attached
    it receives every merged summary *with this aggregator's duplicate
    verdict*, immediately after the fold — the live state is therefore
    the same merge in the same order, which is what makes mid-run
    ``/status`` equal to the post-hoc journal merge.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        progress: ProgressTracker,
        live: Optional["LiveAggregator"] = None,
    ) -> None:
        self.spec = spec
        self.progress = progress
        self.live = live
        self.result = CampaignResult(spec=spec)
        self._seen: set = set()
        if spec.metrics:
            self.result.metrics = MetricsRegistry()
        if spec.coverage:
            from repro.analysis import build_all_cofgs
            from repro.coverage.matrix import CoverageMatrix

            if ":" in spec.coverage:
                module_name, class_name = spec.coverage.split(":", 1)
            else:
                module_name, class_name = spec.coverage.rsplit(".", 1)
            import importlib

            cls = getattr(importlib.import_module(module_name), class_name)
            self.result.coverage = CoverageMatrix(build_all_cofgs(cls))

    def merge(
        self,
        summary: RunSummary,
        shard_id: str = "",
        frame: Optional[TelemetryFrame] = None,
    ) -> None:
        key = summary.schedule_key
        duplicate = key in self._seen
        if duplicate:
            self.result.duplicates += 1
        else:
            self._seen.add(key)
            self.result.summaries.append(summary)
            for code in summary.detected_classes:
                self.result.class_counts[code] += 1
                self.progress.classes[code] += 1
            if self.result.metrics is not None and summary.metrics:
                self.result.metrics.merge_snapshot(
                    MetricsSnapshot.from_dict(summary.metrics)
                )
                contended = self.result.metrics.get(
                    "vm_monitor_contended_ticks_total"
                )
                if isinstance(contended, MetricsCounter):
                    top = contended.top(1, label="monitor")
                    if top:
                        self.progress.top_contended = top[0]
            if self.result.coverage is not None:
                counts = {
                    (m, s, d): n for m, s, d, n in summary.arc_hits
                }
                label = (
                    f"seed{summary.seed}"
                    if summary.seed is not None
                    else f"run{summary.index}"
                )
                self.result.coverage.add_counts(counts, label=label)
                self.progress.coverage_fraction = (
                    self.result.coverage.coverage_fraction()
                )
        self.progress.note_run(summary, duplicate=duplicate)
        if self.live is not None:
            self.live.note_run(
                summary, duplicate=duplicate, shard_id=shard_id, frame=frame
            )

    def goal_reached(self) -> Optional[str]:
        if self.spec.goal == "first-failure" and any(
            not s.ok for s in self.result.summaries
        ):
            return "first-failure"
        if self.spec.goal == "first-deadlock" and any(
            s.status == RunStatus.DEADLOCK.value
            or (s.detection or {}).get("deadlock_cycle")
            for s in self.result.summaries
        ):
            return "first-deadlock"
        if (
            self.spec.goal == "coverage"
            and self.result.coverage is not None
            and self.result.coverage.coverage_fraction() >= 1.0
        ):
            return "coverage"
        return None


def _plan(spec: CampaignSpec):
    """Plan the shard list; returns (shards, planner_summaries, exhausted)."""
    if spec.mode in ("random", "pct"):
        shards = plan_seed_shards(
            spec.mode, spec.budget, spec.shard_size, spec.seed_start
        )
        return shards, [], False
    # build_factory (not bare resolve_factory): template workloads need
    # their component paired in before the planner can run them
    factory = spec.run_config().build_factory()
    n_shards = max(1, spec.budget // spec.shard_size)
    plan = plan_systematic_shards(
        factory,
        budget=spec.budget,
        n_shards=n_shards,
        max_depth=spec.max_depth,
        branch=spec.branch,
    )
    return plan.shards, plan.planner_summaries, plan.exhausted


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class _Active:
    process: Any
    shard: Shard
    deadline: float
    dead_since: Optional[float] = None


def run_campaign(
    spec: CampaignSpec,
    resume: bool = False,
    progress: Optional[ProgressTracker] = None,
    telemetry: Optional["LiveAggregator"] = None,
) -> CampaignResult:
    """Execute (or resume) a campaign and return the merged result.

    ``telemetry`` attaches a live aggregator (see
    :mod:`repro.obs.live`): it receives every merged run and shard
    transition as the orchestrator processes them, and is closed when
    the campaign finishes — the substrate behind ``--serve``/``--dash``.
    """
    spec.validate()
    started = time.monotonic()
    shards, planner_summaries, plan_exhausted = _plan(spec)

    progress = progress or ProgressTracker(total_runs=spec.budget)
    progress.shards_total = len(shards)
    if telemetry is not None:
        telemetry.info.setdefault("fingerprint", spec.fingerprint())
        telemetry.info.setdefault("factory", spec.factory)
        telemetry.info.setdefault("mode", spec.mode)
        telemetry.info.setdefault("workers", spec.workers)
        if telemetry.total_runs is None:
            telemetry.total_runs = spec.budget
        telemetry.set_shards_total(len(shards))
    aggregator = _Aggregator(spec, progress, live=telemetry)
    result = aggregator.result
    result.shards_total = len(shards)

    # -- journal / resume --------------------------------------------------
    journal: Optional[CampaignJournal] = None
    completed: Dict[str, List[RunSummary]] = {}
    exhausted_flags: Dict[str, bool] = {}
    if resume and not spec.journal_path:
        raise CampaignError("resume requires a journal path")
    if spec.journal_path:
        journal = CampaignJournal(spec.journal_path)
        if resume:
            state = journal.resume(spec.fingerprint())
            completed = dict(state.shards)
            exhausted_flags.update(state.exhausted)
        else:
            journal.start(
                spec.fingerprint(),
                meta={"factory": spec.factory, "mode": spec.mode,
                      "budget": spec.budget},
            )

    try:
        planned_ids = {s.shard_id for s in shards}
        resumed_ids = set(completed) & (planned_ids | {PLAN_SHARD_ID})
        for shard_id in sorted(resumed_ids):
            for summary in completed[shard_id]:
                aggregator.merge(summary, shard_id=shard_id)
        shard_resumed_count = len(resumed_ids - {PLAN_SHARD_ID})
        result.shards_resumed = shard_resumed_count
        result.shards_completed = shard_resumed_count
        progress.note_shards_resumed(shard_resumed_count)
        if telemetry is not None:
            telemetry.note_shards_resumed(sorted(resumed_ids - {PLAN_SHARD_ID}))

        # The systematic planner re-ran during _plan (its runs are the
        # price of rebuilding the deterministic shard list); merge them
        # only when they were not already journaled.
        if planner_summaries and PLAN_SHARD_ID not in completed:
            for summary in planner_summaries:
                aggregator.merge(summary, shard_id=PLAN_SHARD_ID)
            if journal is not None:
                journal.append_shard(PLAN_SHARD_ID, planner_summaries)

        pending = deque(s for s in shards if s.shard_id not in resumed_ids)
        goal = aggregator.goal_reached()
        if goal is None and pending:
            runner = _run_inline if spec.workers == 0 else _run_pool
            goal = runner(
                spec, pending, aggregator, journal, progress, exhausted_flags
            )
        if goal is None and spec.goal == "budget" and not result.shards_failed:
            goal = "budget"
        result.goal_reached = goal
        result.exhausted = plan_exhausted or (
            spec.mode == "systematic"
            and bool(shards)
            and result.shards_completed == result.shards_total
            and all(exhausted_flags.get(sid, False) for sid in planned_ids)
        )
    finally:
        if journal is not None:
            journal.close()
        result.wall_time = time.monotonic() - started
        progress.maybe_emit(force=True)
        progress.emit_final()
        if telemetry is not None:
            telemetry.close(goal=result.goal_reached)
    if spec.metrics_out or spec.metrics_prom:
        from repro import __version__
        from repro.obs.export import write_metrics_jsonl, write_prometheus

        registry = result.build_metrics()
        if spec.metrics_out:
            write_metrics_jsonl(
                registry,
                spec.metrics_out,
                meta={
                    "campaign": spec.fingerprint()[:12],
                    "fingerprint": spec.fingerprint(),
                    "factory": spec.factory,
                    "mode": spec.mode,
                    "runs": result.n_runs,
                    "shards": result.shards_total,
                    "repro_version": __version__,
                },
            )
        if spec.metrics_prom:
            write_prometheus(registry, spec.metrics_prom)
    return result


def _run_inline(
    spec: CampaignSpec,
    pending: "deque[Shard]",
    aggregator: _Aggregator,
    journal: Optional[CampaignJournal],
    progress: ProgressTracker,
    exhausted_flags: Dict[str, bool],
) -> Optional[str]:
    """Sequential in-process execution (``workers=0``): no isolation, no
    timeouts beyond the per-run alarm — the debug path."""
    result = aggregator.result
    while pending:
        shard = pending.popleft()
        outcome = execute_shard(
            spec.worker_task(shard),
            emit=lambda summary, _sid=shard.shard_id: aggregator.merge(
                summary, shard_id=_sid
            ),
        )
        exhausted_flags[shard.shard_id] = outcome.exhausted
        if journal is not None:
            journal.append_shard(
                shard.shard_id, outcome.summaries, exhausted=outcome.exhausted
            )
        result.shards_completed += 1
        progress.note_shard_done()
        if aggregator.live is not None:
            aggregator.live.note_shard_done(
                shard.shard_id, exhausted=outcome.exhausted
            )
        progress.maybe_emit()
        goal = aggregator.goal_reached()
        if goal is not None:
            return goal
    return None


def _run_pool(
    spec: CampaignSpec,
    pending: "deque[Shard]",
    aggregator: _Aggregator,
    journal: Optional[CampaignJournal],
    progress: ProgressTracker,
    exhausted_flags: Dict[str, bool],
) -> Optional[str]:
    """The multiprocess orchestration loop: bounded pool, crash isolation,
    shard deadlines, bounded retries, early goal stop."""
    from queue import Empty

    result = aggregator.result
    ctx = _mp_context()
    queue = ctx.Queue()
    active: Dict[str, _Active] = {}
    buffers: Dict[str, List[RunSummary]] = {}
    retries: Dict[str, int] = {}
    #: shard id -> earliest monotonic time a requeued shard may relaunch
    retry_not_before: Dict[str, float] = {}
    goal: Optional[str] = None
    #: grace period between a worker dying and the shard being declared
    #: crashed, so in-flight queue messages (including "done") can drain.
    grace = 1.0

    def launch(shard: Shard) -> None:
        task = spec.worker_task(shard)
        process = ctx.Process(target=worker_main, args=(task, queue), daemon=True)
        process.start()
        deadline = (
            time.monotonic() + spec.run_timeout * max(1, shard.max_runs) + 30.0
        )
        active[shard.shard_id] = _Active(process, shard, deadline)
        buffers[shard.shard_id] = []

    def requeue_or_fail(shard: Shard, error: str = "") -> None:
        buffers.pop(shard.shard_id, None)
        attempt = retries.get(shard.shard_id, 0) + 1
        retries[shard.shard_id] = attempt
        if attempt <= spec.max_retries:
            backoff = min(
                _REQUEUE_BACKOFF_CAP, _REQUEUE_BACKOFF_BASE * 2 ** (attempt - 1)
            )
            retry_not_before[shard.shard_id] = time.monotonic() + backoff
            pending.append(shard)
            progress.note_shard_requeued(shard.shard_id)
            result.shards_requeued += 1
            if aggregator.live is not None:
                aggregator.live.note_shard_requeued(shard.shard_id)
        else:
            result.shards_failed.append(shard.shard_id)
            progress.note_shard_failed()
            if aggregator.live is not None:
                aggregator.live.note_shard_failed(shard.shard_id, error=error)

    def retire(shard_id: str) -> Optional[_Active]:
        entry = active.pop(shard_id, None)
        if entry is not None:
            entry.process.join(timeout=5.0)
        return entry

    def handle(kind: str, shard_id: str, payload) -> None:
        nonlocal goal
        if kind in ("frame", "run"):
            # "frame" wraps the summary with shard-local telemetry
            # counters; bare "run" payloads (pre-frame workers) still work.
            frame: Optional[TelemetryFrame] = None
            if kind == "frame":
                frame = TelemetryFrame.from_dict(payload)
                if frame.summary is None:
                    return
                summary = frame.summary
            else:
                summary = RunSummary.from_dict(payload)
            if shard_id in buffers:
                buffers[shard_id].append(summary)
            aggregator.merge(summary, shard_id=shard_id, frame=frame)
            if goal is None:
                goal = aggregator.goal_reached()
        elif kind == "done":
            exhausted_flags[shard_id] = bool(payload)
            summaries = buffers.pop(shard_id, [])
            if journal is not None:
                journal.append_shard(shard_id, summaries, exhausted=bool(payload))
            result.shards_completed += 1
            progress.note_shard_done()
            if aggregator.live is not None:
                aggregator.live.note_shard_done(shard_id, exhausted=bool(payload))
            retire(shard_id)
        elif kind == "fail":
            entry = retire(shard_id)
            if entry is not None:
                requeue_or_fail(entry.shard, error=str(payload))

    try:
        while (pending or active) and goal is None:
            # Launch every eligible shard; requeued shards still inside
            # their backoff window rotate to the back so they never block
            # fresh work behind them.
            now = time.monotonic()
            for _ in range(len(pending)):
                if len(active) >= spec.workers:
                    break
                shard = pending.popleft()
                if retry_not_before.get(shard.shard_id, 0.0) > now:
                    pending.append(shard)
                else:
                    launch(shard)

            # Drain every available message before judging liveness, so a
            # cleanly finished worker is never mistaken for a crash.
            try:
                message = queue.get(timeout=0.05)
            except Empty:
                message = None
            while message is not None:
                handle(*message)
                try:
                    message = queue.get_nowait()
                except Empty:
                    message = None

            now = time.monotonic()
            for shard_id, entry in list(active.items()):
                if not entry.process.is_alive():
                    if entry.dead_since is None:
                        entry.dead_since = now
                    elif now - entry.dead_since > grace:
                        # died without a done/fail message: hard crash
                        retire(shard_id)
                        requeue_or_fail(entry.shard)
                elif now > entry.deadline:
                    entry.process.terminate()
                    retire(shard_id)
                    requeue_or_fail(entry.shard)
            progress.maybe_emit()
    finally:
        for _shard_id, entry in list(active.items()):
            if entry.process.is_alive():
                entry.process.terminate()
            entry.process.join(timeout=5.0)
        active.clear()
        queue.close()
        queue.cancel_join_thread()
    return goal
