"""Parallel, resumable schedule-exploration campaigns.

``repro.engine`` scales the single-process explorer
(:mod:`repro.testing.explorer`) across a ``multiprocessing`` worker pool:

* :mod:`~repro.engine.shards` — partition the schedule space (seed
  ranges, DFS decision-prefix subtrees) into independent shards;
* :mod:`~repro.engine.worker` — the crash-isolated child-process entry
  point, with per-run wall-clock timeouts;
* :mod:`~repro.engine.journal` — the JSONL checkpoint that makes a
  killed campaign resumable without rework;
* :mod:`~repro.engine.progress` — live counters (runs/sec, distinct
  failure signatures, coverage %);
* :mod:`~repro.engine.campaign` — the orchestrator tying it together;
* :mod:`~repro.engine.workloads` — the named Ext-B program factories.

Public API::

    from repro.engine import CampaignSpec, run_campaign

    spec = CampaignSpec(factory="pc-bug", mode="random",
                        budget=400, workers=4,
                        journal_path="campaign.jsonl")
    result = run_campaign(spec)
    print(result.describe())          # includes one-command replays
    ...
    run_campaign(spec, resume=True)   # after a crash: skips journaled shards
"""

from .campaign import (
    CampaignError,
    CampaignResult,
    CampaignSpec,
    ReplayArtifact,
    run_campaign,
)
from .journal import CampaignJournal, JournalError, JournalState
from .progress import ProgressTracker
from .shards import Shard, SystematicPlan, plan_seed_shards, plan_systematic_shards
from .worker import ShardOutcome, WorkerTask, execute_shard
from .workloads import WORKLOADS, resolve_factory, workload_names

__all__ = [
    "CampaignError",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "JournalError",
    "JournalState",
    "ProgressTracker",
    "ReplayArtifact",
    "Shard",
    "ShardOutcome",
    "SystematicPlan",
    "WORKLOADS",
    "WorkerTask",
    "execute_shard",
    "plan_seed_shards",
    "plan_systematic_shards",
    "resolve_factory",
    "run_campaign",
    "workload_names",
]
