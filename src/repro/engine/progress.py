"""Live campaign counters: runs/sec, distinct signatures, coverage.

The orchestrator calls ``note_*`` as events arrive and ``maybe_emit``
once per loop tick; the tracker rate-limits its own output so a hot
campaign does not drown the terminal.  Everything here is also the data
of the final report — ``snapshot()`` is what ``CampaignResult.describe``
prints.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from typing import IO, Any, Dict, Optional, Set, Tuple

from repro.testing.explorer import RunSummary

__all__ = ["ProgressTracker"]


class ProgressTracker:
    """Counters for a running campaign, with optional periodic emission.

    ``json_mode`` switches the emitted heartbeats from the human one-liner
    to machine-readable JSONL (one object per heartbeat, ``"final": true``
    on the last) — what ``repro campaign --progress-json`` gives CI
    pipelines to parse instead of scraping the text line.
    """

    def __init__(
        self,
        total_runs: Optional[int] = None,
        stream: Optional[IO[str]] = None,
        interval: float = 1.0,
        clock=time.monotonic,
        json_mode: bool = False,
    ) -> None:
        self.total_runs = total_runs
        self.stream = stream
        self.interval = interval
        self.json_mode = json_mode
        self._clock = clock
        self.started_at = clock()
        self._last_emit = float("-inf")

        self.runs = 0
        self.duplicates = 0
        self.failures = 0
        self.signatures: Set[Tuple[str, Tuple[str, ...]]] = set()
        #: failure-class code -> unique schedules implicating it (detect mode)
        self.classes: Counter = Counter()
        self.coverage_fraction: Optional[float] = None
        #: ``(monitor, contended_ticks)`` for the currently most contended
        #: monitor (metrics mode; fed by the campaign aggregator)
        self.top_contended: Optional[Tuple[str, float]] = None
        self.shards_done = 0
        self.shards_failed = 0
        self.shards_requeued = 0
        self.shards_resumed = 0
        self.shards_total = 0
        #: shard id -> launch attempts beyond the first (crash-requeued
        #: shards only); rendered in the heartbeat so a flapping shard is
        #: visible while the campaign is still running
        self.shard_attempts: Dict[str, int] = {}

    # -- event intake ------------------------------------------------------

    def note_run(self, summary: RunSummary, duplicate: bool = False) -> None:
        self.runs += 1
        if duplicate:
            self.duplicates += 1
        if not summary.ok:
            self.failures += 1
            self.signatures.add(summary.signature)

    def note_shard_done(self) -> None:
        self.shards_done += 1

    def note_shard_failed(self) -> None:
        self.shards_failed += 1

    def note_shard_requeued(self, shard_id: Optional[str] = None) -> None:
        self.shards_requeued += 1
        if shard_id is not None:
            self.shard_attempts[shard_id] = self.shard_attempts.get(shard_id, 0) + 1

    def note_shards_resumed(self, count: int) -> None:
        self.shards_resumed += count
        self.shards_done += count

    # -- derived numbers ---------------------------------------------------

    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-9)

    def runs_per_sec(self) -> float:
        return self.runs / self.elapsed()

    def eta_seconds(self) -> Optional[float]:
        """Seconds until ``total_runs`` at the observed rate, or None
        when no budget is known or no run has finished yet."""
        if not self.total_runs or self.runs <= 0:
            return None
        remaining = self.total_runs - self.runs
        if remaining <= 0:
            return 0.0
        return remaining / self.runs_per_sec()

    @staticmethod
    def _format_duration(seconds: float) -> str:
        if seconds < 60:
            return f"{seconds:.0f}s"
        minutes, secs = divmod(int(round(seconds)), 60)
        if minutes < 60:
            return f"{minutes}m{secs:02d}s"
        hours, minutes = divmod(minutes, 60)
        return f"{hours}h{minutes:02d}m"

    # -- rendering ---------------------------------------------------------

    def to_json_dict(self, final: bool = False) -> Dict[str, Any]:
        """One heartbeat as a JSON-safe dict (the ``--progress-json``
        record; see docs/formats.md)."""
        eta = self.eta_seconds()
        record: Dict[str, Any] = {
            "runs": self.runs,
            "total_runs": self.total_runs,
            "duplicates": self.duplicates,
            "failures": self.failures,
            "signatures": len(self.signatures),
            "runs_per_sec": round(self.runs_per_sec(), 3),
            "eta_seconds": None if eta is None else round(eta, 3),
            "elapsed_seconds": round(self.elapsed(), 3),
            "shards": {
                "done": self.shards_done,
                "total": self.shards_total,
                "failed": self.shards_failed,
                "requeued": self.shards_requeued,
                "resumed": self.shards_resumed,
            },
        }
        if self.classes:
            record["classes"] = dict(sorted(self.classes.items()))
        if self.coverage_fraction is not None:
            record["coverage"] = round(self.coverage_fraction, 4)
        if self.shard_attempts:
            record["attempts"] = {
                shard_id: count + 1
                for shard_id, count in sorted(self.shard_attempts.items())
            }
        if self.top_contended is not None:
            monitor, ticks = self.top_contended
            record["top_contended"] = {"monitor": monitor, "ticks": ticks}
        if final:
            record["final"] = True
        return record

    def render(self) -> str:
        parts = []
        if self.total_runs:
            parts.append(f"runs {self.runs}/{self.total_runs}")
        else:
            parts.append(f"runs {self.runs}")
        parts.append(f"{self.runs_per_sec():.1f}/s")
        eta = self.eta_seconds()
        if eta is not None and eta > 0:
            parts.append(f"eta {self._format_duration(eta)}")
        parts.append(f"failures {self.failures}")
        parts.append(f"signatures {len(self.signatures)}")
        if self.classes:
            class_bit = ",".join(
                f"{code}:{count}" for code, count in sorted(self.classes.items())
            )
            parts.append(f"classes {class_bit}")
        if self.coverage_fraction is not None:
            parts.append(f"coverage {self.coverage_fraction:.0%}")
        shard_bit = f"shards {self.shards_done}/{self.shards_total}"
        if self.shards_requeued:
            shard_bit += f" ({self.shards_requeued} requeued)"
        if self.shards_resumed:
            shard_bit += f" ({self.shards_resumed} resumed)"
        parts.append(shard_bit)
        if self.shard_attempts:
            retry_bit = ",".join(
                f"{shard_id}x{count + 1}"
                for shard_id, count in sorted(self.shard_attempts.items())
            )
            parts.append(f"attempts {retry_bit}")
        if self.top_contended is not None:
            monitor, ticks = self.top_contended
            parts.append(f"hot {monitor}:{int(ticks)}")
        return " | ".join(parts)

    def render_final(self) -> str:
        """The one-line post-campaign summary."""
        parts = [
            f"done: {self.runs} runs in "
            f"{self._format_duration(self.elapsed())} "
            f"({self.runs_per_sec():.1f}/s)",
            f"failures {self.failures} "
            f"({len(self.signatures)} signature(s))",
        ]
        if self.classes:
            class_bit = ",".join(
                f"{code}:{count}" for code, count in sorted(self.classes.items())
            )
            parts.append(f"classes {class_bit}")
        if self.coverage_fraction is not None:
            parts.append(f"coverage {self.coverage_fraction:.0%}")
        if self.top_contended is not None:
            monitor, ticks = self.top_contended
            parts.append(f"hottest monitor {monitor} ({int(ticks)} ticks)")
        return " | ".join(parts)

    def maybe_emit(self, force: bool = False) -> None:
        """Write a progress line at most once per ``interval`` seconds."""
        if self.stream is None:
            return
        now = self._clock()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        if self.json_mode:
            self.stream.write(json.dumps(self.to_json_dict(), sort_keys=True) + "\n")
        else:
            self.stream.write(self.render() + "\n")
        self.stream.flush()

    def emit_final(self) -> None:
        """Write the final summary line (unconditionally)."""
        if self.stream is None:
            return
        if self.json_mode:
            line = json.dumps(self.to_json_dict(final=True), sort_keys=True)
        else:
            line = self.render_final()
        self.stream.write(line + "\n")
        self.stream.flush()
