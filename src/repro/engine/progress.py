"""Live campaign counters: runs/sec, distinct signatures, coverage.

The orchestrator calls ``note_*`` as events arrive and ``maybe_emit``
once per loop tick; the tracker rate-limits its own output so a hot
campaign does not drown the terminal.  Everything here is also the data
of the final report — ``snapshot()`` is what ``CampaignResult.describe``
prints.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import IO, Optional, Set, Tuple

from repro.testing.explorer import RunSummary

__all__ = ["ProgressTracker"]


class ProgressTracker:
    """Counters for a running campaign, with optional periodic emission."""

    def __init__(
        self,
        total_runs: Optional[int] = None,
        stream: Optional[IO[str]] = None,
        interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.total_runs = total_runs
        self.stream = stream
        self.interval = interval
        self._clock = clock
        self.started_at = clock()
        self._last_emit = float("-inf")

        self.runs = 0
        self.duplicates = 0
        self.failures = 0
        self.signatures: Set[Tuple[str, Tuple[str, ...]]] = set()
        #: failure-class code -> unique schedules implicating it (detect mode)
        self.classes: Counter = Counter()
        self.coverage_fraction: Optional[float] = None
        self.shards_done = 0
        self.shards_failed = 0
        self.shards_requeued = 0
        self.shards_resumed = 0
        self.shards_total = 0

    # -- event intake ------------------------------------------------------

    def note_run(self, summary: RunSummary, duplicate: bool = False) -> None:
        self.runs += 1
        if duplicate:
            self.duplicates += 1
        if not summary.ok:
            self.failures += 1
            self.signatures.add(summary.signature)

    def note_shard_done(self) -> None:
        self.shards_done += 1

    def note_shard_failed(self) -> None:
        self.shards_failed += 1

    def note_shard_requeued(self) -> None:
        self.shards_requeued += 1

    def note_shards_resumed(self, count: int) -> None:
        self.shards_resumed += count
        self.shards_done += count

    # -- derived numbers ---------------------------------------------------

    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-9)

    def runs_per_sec(self) -> float:
        return self.runs / self.elapsed()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        parts = []
        if self.total_runs:
            parts.append(f"runs {self.runs}/{self.total_runs}")
        else:
            parts.append(f"runs {self.runs}")
        parts.append(f"{self.runs_per_sec():.1f}/s")
        parts.append(f"failures {self.failures}")
        parts.append(f"signatures {len(self.signatures)}")
        if self.classes:
            class_bit = ",".join(
                f"{code}:{count}" for code, count in sorted(self.classes.items())
            )
            parts.append(f"classes {class_bit}")
        if self.coverage_fraction is not None:
            parts.append(f"coverage {self.coverage_fraction:.0%}")
        shard_bit = f"shards {self.shards_done}/{self.shards_total}"
        if self.shards_requeued:
            shard_bit += f" ({self.shards_requeued} requeued)"
        if self.shards_resumed:
            shard_bit += f" ({self.shards_resumed} resumed)"
        parts.append(shard_bit)
        return " | ".join(parts)

    def maybe_emit(self, force: bool = False) -> None:
        """Write a progress line at most once per ``interval`` seconds."""
        if self.stream is None:
            return
        now = self._clock()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        self.stream.write(self.render() + "\n")
        self.stream.flush()
