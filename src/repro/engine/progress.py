"""Live campaign counters: runs/sec, distinct signatures, coverage.

The orchestrator calls ``note_*`` as events arrive and ``maybe_emit``
once per loop tick; the tracker rate-limits its own output so a hot
campaign does not drown the terminal.  Everything here is also the data
of the final report — ``snapshot()`` is what ``CampaignResult.describe``
prints.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import IO, Dict, Optional, Set, Tuple

from repro.testing.explorer import RunSummary

__all__ = ["ProgressTracker"]


class ProgressTracker:
    """Counters for a running campaign, with optional periodic emission."""

    def __init__(
        self,
        total_runs: Optional[int] = None,
        stream: Optional[IO[str]] = None,
        interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.total_runs = total_runs
        self.stream = stream
        self.interval = interval
        self._clock = clock
        self.started_at = clock()
        self._last_emit = float("-inf")

        self.runs = 0
        self.duplicates = 0
        self.failures = 0
        self.signatures: Set[Tuple[str, Tuple[str, ...]]] = set()
        #: failure-class code -> unique schedules implicating it (detect mode)
        self.classes: Counter = Counter()
        self.coverage_fraction: Optional[float] = None
        #: ``(monitor, contended_ticks)`` for the currently most contended
        #: monitor (metrics mode; fed by the campaign aggregator)
        self.top_contended: Optional[Tuple[str, float]] = None
        self.shards_done = 0
        self.shards_failed = 0
        self.shards_requeued = 0
        self.shards_resumed = 0
        self.shards_total = 0
        #: shard id -> launch attempts beyond the first (crash-requeued
        #: shards only); rendered in the heartbeat so a flapping shard is
        #: visible while the campaign is still running
        self.shard_attempts: Dict[str, int] = {}

    # -- event intake ------------------------------------------------------

    def note_run(self, summary: RunSummary, duplicate: bool = False) -> None:
        self.runs += 1
        if duplicate:
            self.duplicates += 1
        if not summary.ok:
            self.failures += 1
            self.signatures.add(summary.signature)

    def note_shard_done(self) -> None:
        self.shards_done += 1

    def note_shard_failed(self) -> None:
        self.shards_failed += 1

    def note_shard_requeued(self, shard_id: Optional[str] = None) -> None:
        self.shards_requeued += 1
        if shard_id is not None:
            self.shard_attempts[shard_id] = self.shard_attempts.get(shard_id, 0) + 1

    def note_shards_resumed(self, count: int) -> None:
        self.shards_resumed += count
        self.shards_done += count

    # -- derived numbers ---------------------------------------------------

    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-9)

    def runs_per_sec(self) -> float:
        return self.runs / self.elapsed()

    def eta_seconds(self) -> Optional[float]:
        """Seconds until ``total_runs`` at the observed rate, or None
        when no budget is known or no run has finished yet."""
        if not self.total_runs or self.runs <= 0:
            return None
        remaining = self.total_runs - self.runs
        if remaining <= 0:
            return 0.0
        return remaining / self.runs_per_sec()

    @staticmethod
    def _format_duration(seconds: float) -> str:
        if seconds < 60:
            return f"{seconds:.0f}s"
        minutes, secs = divmod(int(round(seconds)), 60)
        if minutes < 60:
            return f"{minutes}m{secs:02d}s"
        hours, minutes = divmod(minutes, 60)
        return f"{hours}h{minutes:02d}m"

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        parts = []
        if self.total_runs:
            parts.append(f"runs {self.runs}/{self.total_runs}")
        else:
            parts.append(f"runs {self.runs}")
        parts.append(f"{self.runs_per_sec():.1f}/s")
        eta = self.eta_seconds()
        if eta is not None and eta > 0:
            parts.append(f"eta {self._format_duration(eta)}")
        parts.append(f"failures {self.failures}")
        parts.append(f"signatures {len(self.signatures)}")
        if self.classes:
            class_bit = ",".join(
                f"{code}:{count}" for code, count in sorted(self.classes.items())
            )
            parts.append(f"classes {class_bit}")
        if self.coverage_fraction is not None:
            parts.append(f"coverage {self.coverage_fraction:.0%}")
        shard_bit = f"shards {self.shards_done}/{self.shards_total}"
        if self.shards_requeued:
            shard_bit += f" ({self.shards_requeued} requeued)"
        if self.shards_resumed:
            shard_bit += f" ({self.shards_resumed} resumed)"
        parts.append(shard_bit)
        if self.shard_attempts:
            retry_bit = ",".join(
                f"{shard_id}x{count + 1}"
                for shard_id, count in sorted(self.shard_attempts.items())
            )
            parts.append(f"attempts {retry_bit}")
        if self.top_contended is not None:
            monitor, ticks = self.top_contended
            parts.append(f"hot {monitor}:{int(ticks)}")
        return " | ".join(parts)

    def render_final(self) -> str:
        """The one-line post-campaign summary."""
        parts = [
            f"done: {self.runs} runs in "
            f"{self._format_duration(self.elapsed())} "
            f"({self.runs_per_sec():.1f}/s)",
            f"failures {self.failures} "
            f"({len(self.signatures)} signature(s))",
        ]
        if self.classes:
            class_bit = ",".join(
                f"{code}:{count}" for code, count in sorted(self.classes.items())
            )
            parts.append(f"classes {class_bit}")
        if self.coverage_fraction is not None:
            parts.append(f"coverage {self.coverage_fraction:.0%}")
        if self.top_contended is not None:
            monitor, ticks = self.top_contended
            parts.append(f"hottest monitor {monitor} ({int(ticks)} ticks)")
        return " | ".join(parts)

    def maybe_emit(self, force: bool = False) -> None:
        """Write a progress line at most once per ``interval`` seconds."""
        if self.stream is None:
            return
        now = self._clock()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        self.stream.write(self.render() + "\n")
        self.stream.flush()

    def emit_final(self) -> None:
        """Write the final summary line (unconditionally)."""
        if self.stream is None:
            return
        self.stream.write(self.render_final() + "\n")
        self.stream.flush()
