"""Shard planning: partition a schedule space into independent units.

A :class:`Shard` is the unit of distribution, journaling, and retry.  Two
partitioning strategies, matching the two exploration families:

* **Seed ranges** (random / PCT): the seed space is embarrassingly
  parallel, so shards are contiguous slices of ``range(seed_start,
  seed_start + budget)``.  Deterministic: the same spec always plans the
  same shards, which is what lets a resumed campaign skip journaled
  shard ids and still cover exactly the original seed set.

* **DFS decision-prefix partitions** (systematic): the planner runs a
  short bounded enumeration in the orchestrator process and partitions
  the explorer's *pending* stack — the decision prefixes the DFS had
  queued but not yet executed.  Subtrees under distinct pending prefixes
  are provably disjoint (each pushed prefix flips a decision its
  siblings keep), so workers enumerate them with zero coordination and
  the union, plus the planner's own expansion runs, is exactly what a
  single-process DFS with the same budget would have covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.testing.explorer import (
    ExplorationRun,
    ProgramFactory,
    RunSummary,
    explore_systematic,
)

__all__ = ["Shard", "SystematicPlan", "plan_seed_shards", "plan_systematic_shards"]


@dataclass(frozen=True)
class Shard:
    """One independently executable slice of a campaign's schedule space."""

    shard_id: str
    mode: str  # "random" | "pct" | "systematic"
    seeds: Tuple[int, ...] = ()
    prefixes: Tuple[Tuple[int, ...], ...] = ()
    max_runs: int = 0

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "shard_id": self.shard_id,
            "mode": self.mode,
            "max_runs": self.max_runs,
        }
        if self.seeds:
            payload["seeds"] = list(self.seeds)
        if self.prefixes:
            payload["prefixes"] = [list(p) for p in self.prefixes]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Shard":
        return cls(
            shard_id=str(payload["shard_id"]),
            mode=str(payload["mode"]),
            seeds=tuple(int(s) for s in payload.get("seeds", ())),
            prefixes=tuple(
                tuple(int(d) for d in p) for p in payload.get("prefixes", ())
            ),
            max_runs=int(payload.get("max_runs", 0)),
        )


def plan_seed_shards(
    mode: str,
    budget: int,
    shard_size: int,
    seed_start: int = 0,
) -> List[Shard]:
    """Slice ``budget`` seeds into contiguous shards of ``shard_size``."""
    if budget <= 0:
        return []
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    shards: List[Shard] = []
    for lo in range(seed_start, seed_start + budget, shard_size):
        hi = min(lo + shard_size, seed_start + budget)
        shards.append(
            Shard(
                shard_id=f"{mode}-{lo:06d}-{hi:06d}",
                mode=mode,
                seeds=tuple(range(lo, hi)),
                max_runs=hi - lo,
            )
        )
    return shards


@dataclass
class SystematicPlan:
    """The output of systematic planning: shards, plus summaries of the
    expansion runs the planner itself executed (they are real runs of the
    campaign and count toward its budget — journaled as shard ``"plan"``)."""

    shards: List[Shard]
    planner_summaries: List[RunSummary] = field(default_factory=list)
    exhausted: bool = False  # the planner alone enumerated the whole tree


def plan_systematic_shards(
    factory: ProgramFactory,
    budget: int,
    n_shards: int,
    max_depth: int = 400,
    branch: str = "shallow",
) -> SystematicPlan:
    """Expand the decision tree just far enough to split it, then deal the
    explorer's pending frontier round-robin into ``n_shards`` groups.

    The expansion executes at most ``min(budget, n_shards)`` runs in the
    calling process; small trees may exhaust during planning, in which
    case no shards are needed at all.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    planner_summaries: List[RunSummary] = []

    def note(run: ExplorationRun) -> None:
        planner_summaries.append(run.summary())

    expansion = explore_systematic(
        factory,
        max_runs=min(budget, n_shards),
        max_depth=max_depth,
        branch=branch,
        on_run=note,
        keep_runs=False,
    )
    frontier = list(expansion.pending)
    if not frontier:
        return SystematicPlan(
            shards=[], planner_summaries=planner_summaries, exhausted=True
        )

    groups: List[List[Tuple[int, ...]]] = [
        [] for _ in range(min(n_shards, len(frontier)))
    ]
    # The frontier is in stack order (last pops first); deal from the top
    # so each shard starts near where the sequential DFS would have.
    for i, prefix in enumerate(reversed(frontier)):
        groups[i % len(groups)].append(prefix)
    remaining = max(0, budget - expansion.n_executed)
    per_shard = max(1, -(-remaining // len(groups)))  # ceil division
    shards = [
        Shard(
            shard_id=f"dfs-{i:04d}",
            mode="systematic",
            prefixes=tuple(group),
            max_runs=per_shard,
        )
        for i, group in enumerate(groups)
    ]
    return SystematicPlan(
        shards=shards, planner_summaries=planner_summaries, exhausted=False
    )
