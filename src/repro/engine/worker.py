"""Campaign worker: executes one shard, streaming compact summaries.

Runs in a child process (or inline, for ``workers=0`` debugging).  The
worker rebuilds the program from the factory *spec string* — nothing
unpicklable crosses the process boundary — then drives the matching
explorer over its shard's seeds or DFS prefixes, posting one
:class:`~repro.testing.explorer.RunSummary` message per completed run and
a final ``done`` message.  The orchestrator treats a missing ``done`` as
a crashed/hung worker and requeues the shard.

Per-run wall-clock timeouts use ``SIGALRM`` where available (child
processes run in their main thread, so the signal contract holds).  The
timeout exception derives from ``BaseException`` on purpose: the kernel's
run loop catches ``Exception`` from thread bodies (a crashed thread is a
*result*, not an error), and a timeout must cut through that to abort the
whole run.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.detect.online import PipelineFactory
from repro.obs.sink import ObservedFactory
from repro.testing.explorer import (
    ExplorationRun,
    RunSummary,
    explore_pct,
    explore_random,
    explore_systematic,
)
from repro.vm.kernel import Kernel, RunResult, RunStatus

from .shards import Shard
from .workloads import resolve_factory

__all__ = ["WorkerTask", "ShardOutcome", "execute_shard", "worker_main"]


class RunTimeoutInterrupt(BaseException):
    """Raised by the SIGALRM handler to abort a wedged run.

    BaseException so the kernel's per-thread ``except Exception`` cannot
    swallow it and mislabel the timeout as a thread crash.
    """


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker needs to execute one shard, all picklable."""

    shard: Shard
    factory_spec: str
    run_timeout: float = 10.0
    max_depth: int = 400
    branch: str = "shallow"
    pct_depth: int = 3
    pct_expected_steps: int = 200
    stop_on_failure: bool = False
    coverage_spec: Optional[str] = None  # "module:Class" for CoFG tracking
    #: run the streaming detector pipeline on every run, shipping a
    #: DetectionSummary dict inside each RunSummary
    detect: bool = False
    #: kernel trace retention ("full" | "none"); "none" requires detect
    #: to still observe anything, and is incompatible with coverage_spec
    #: (the CoFG tracker reads the stored trace)
    trace_mode: str = "full"
    #: attach an instrumentation sink to every run, shipping a
    #: MetricsSnapshot dict inside each RunSummary
    metrics: bool = False


@dataclass
class ShardOutcome:
    """An inline-executed shard's aggregated result."""

    shard_id: str
    summaries: List[RunSummary] = field(default_factory=list)
    exhausted: bool = False


def _timed_runner(timeout: float) -> Callable[[Kernel], RunResult]:
    """A kernel runner that aborts after ``timeout`` wall-clock seconds,
    returning a TIMEOUT result instead of hanging the shard.  Falls back
    to plain ``Kernel.run`` where SIGALRM is unavailable (non-POSIX) —
    the orchestrator's shard deadline still bounds those."""
    if timeout <= 0 or not hasattr(signal, "SIGALRM"):
        return lambda kernel: kernel.run()

    def run(kernel: Kernel) -> RunResult:
        def _on_alarm(signum, frame):
            raise RunTimeoutInterrupt()

        try:
            previous = signal.signal(signal.SIGALRM, _on_alarm)
        except ValueError:  # not the main thread (inline mode under test)
            return kernel.run()
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return kernel.run()
        except RunTimeoutInterrupt:
            live = [t.name for t in kernel.threads.values() if t.is_live()]
            return RunResult(
                status=RunStatus.TIMEOUT,
                trace=kernel.trace,
                steps=kernel.steps,
                stuck_threads=live,
                schedule_log=list(kernel.schedule_log),
            )
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    return run


def _coverage_extractor(
    coverage_spec: Optional[str],
) -> Optional[Callable[[Any], List[Tuple[str, str, str, int]]]]:
    """Build a trace -> per-arc hit count extractor from a component spec
    (CoFGs are built once per shard, in the worker)."""
    if not coverage_spec:
        return None
    from repro.analysis import build_all_cofgs
    from repro.coverage.tracker import CoverageTracker

    if ":" in coverage_spec:
        module_name, class_name = coverage_spec.split(":", 1)
    elif "." in coverage_spec:
        module_name, class_name = coverage_spec.rsplit(".", 1)
    else:
        raise ValueError(f"coverage spec {coverage_spec!r} must be module:Class")
    import importlib

    cls = getattr(importlib.import_module(module_name), class_name)
    cofgs = build_all_cofgs(cls)

    def extract(trace) -> List[Tuple[str, str, str, int]]:
        tracker = CoverageTracker(cofgs)
        tracker.feed(trace)
        hits: List[Tuple[str, str, str, int]] = []
        for method, coverage in tracker.methods.items():
            for (src, dst), count in coverage.hits.items():
                if count:
                    hits.append((method, src, dst, count))
        return hits

    return extract


def execute_shard(
    task: WorkerTask,
    emit: Optional[Callable[[RunSummary], None]] = None,
) -> ShardOutcome:
    """Run one shard to completion in this process.

    ``emit`` is called with each run's summary as it completes (the
    streaming hook: the process worker posts to the result queue, inline
    mode feeds the orchestrator's aggregator directly).
    """
    factory = resolve_factory(task.factory_spec)
    if task.trace_mode != "full" and task.coverage_spec:
        raise ValueError(
            "coverage tracking reads the stored trace; use trace_mode='full'"
        )
    pipeline_factory: Optional[PipelineFactory] = None
    if task.detect:
        pipeline_factory = PipelineFactory(factory, trace_mode=task.trace_mode)
        factory = pipeline_factory
    elif task.trace_mode != "full":
        raise ValueError("trace_mode='none' without detect observes nothing")
    observed: Optional[ObservedFactory] = None
    if task.metrics:
        # Outermost wrapper: builds the (possibly pipeline-attached)
        # kernel, then installs a fresh sink on it.
        observed = ObservedFactory(factory)
        factory = observed
    runner = _timed_runner(task.run_timeout)
    if observed is not None:
        base_runner = runner

        def runner(kernel: Kernel) -> RunResult:  # noqa: F811 - deliberate wrap
            run_started = time.perf_counter()
            result = base_runner(kernel)
            sink = observed.sink
            if sink is not None:
                sink.registry.histogram(
                    "run_wall_seconds", "wall-clock duration per run by status"
                ).observe(
                    time.perf_counter() - run_started, status=result.status.value
                )
            return result

    extract = _coverage_extractor(task.coverage_spec)
    outcome = ShardOutcome(shard_id=task.shard.shard_id)

    def on_run(run: ExplorationRun) -> None:
        arc_hits = extract(run.result.trace) if extract is not None else ()
        detection = None
        if pipeline_factory is not None and pipeline_factory.pipeline is not None:
            detection = pipeline_factory.pipeline.summary(run.result).to_dict()
        metrics = None
        if observed is not None and observed.sink is not None:
            metrics = observed.sink.snapshot().to_dict()
        summary = run.summary(arc_hits=arc_hits, detection=detection, metrics=metrics)
        outcome.summaries.append(summary)
        if emit is not None:
            emit(summary)

    shard = task.shard
    if shard.mode == "systematic":
        result = explore_systematic(
            factory,
            max_runs=shard.max_runs,
            max_depth=task.max_depth,
            branch=task.branch,
            roots=[list(p) for p in shard.prefixes],
            stop_on_failure=task.stop_on_failure,
            on_run=on_run,
            keep_runs=False,
            runner=runner,
        )
        outcome.exhausted = result.exhausted
    elif shard.mode == "random":
        explore_random(
            factory,
            seeds=shard.seeds,
            stop_on_failure=task.stop_on_failure,
            on_run=on_run,
            keep_runs=False,
            runner=runner,
        )
    elif shard.mode == "pct":
        explore_pct(
            factory,
            seeds=shard.seeds,
            depth=task.pct_depth,
            expected_steps=task.pct_expected_steps,
            stop_on_failure=task.stop_on_failure,
            on_run=on_run,
            keep_runs=False,
            runner=runner,
        )
    else:
        raise ValueError(f"unknown shard mode {shard.mode!r}")
    return outcome


def worker_main(task: WorkerTask, queue) -> None:
    """Child-process entry point: execute the shard, streaming messages.

    Message protocol (all tuples, all picklable):

    * ``("run", shard_id, summary_dict)`` — one per completed run;
    * ``("done", shard_id, exhausted)`` — the shard finished;
    * ``("fail", shard_id, error_text)`` — the shard raised; the
      orchestrator decides whether to requeue.

    A worker that dies without posting ``done``/``fail`` (hard crash,
    ``kill -9``, segfault in an extension) is detected by the orchestrator
    via process liveness — that is the crash-isolation contract.
    """
    shard_id = task.shard.shard_id
    try:
        outcome = execute_shard(
            task,
            emit=lambda summary: queue.put(("run", shard_id, summary.to_dict())),
        )
        queue.put(("done", shard_id, outcome.exhausted))
    except BaseException as exc:  # noqa: BLE001 - report, then die quietly
        try:
            queue.put(("fail", shard_id, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
