"""Campaign worker: executes one shard, streaming compact summaries.

Runs in a child process (or inline, for ``workers=0`` debugging).  The
worker receives a picklable :class:`~repro.run.config.RunConfig` —
nothing unpicklable crosses the process boundary — builds **one**
:class:`~repro.run.executor.RunExecutor` from it, and drives the
matching explorer over its shard's seeds or DFS prefixes, posting one
:class:`~repro.obs.live.frames.TelemetryFrame` (wrapping the run's
:class:`~repro.testing.explorer.RunSummary` plus shard-local counters)
per completed run and a final ``done`` message.  The orchestrator treats
a missing ``done`` as a crashed/hung worker and requeues the shard.

The executor assembles the detector pipeline / instrumentation sink once
per shard and resets them between runs (the old per-run reconstruction
was pure allocation overhead — bench Ext-J measures the reduction).
Per-run wall-clock timeouts use ``SIGALRM`` where available (child
processes run in their main thread, so the signal contract holds); see
:func:`repro.run.executor.timed_runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs.live.frames import TelemetryFrame
from repro.run.config import RunConfig
from repro.run.executor import (  # noqa: F401 - re-exported for backcompat
    RunExecutor,
    RunTimeoutInterrupt,
    timed_runner as _timed_runner,
)
from repro.testing.explorer import ExplorationRun, RunSummary
from repro.vm.kernel import RunStatus

from .shards import Shard

__all__ = ["WorkerTask", "ShardOutcome", "execute_shard", "worker_main"]


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker needs to execute one shard, all picklable:
    the shard itself plus the :class:`RunConfig` describing how every
    run in it is assembled."""

    shard: Shard
    config: RunConfig
    stop_on_failure: bool = False


@dataclass
class ShardOutcome:
    """An inline-executed shard's aggregated result."""

    shard_id: str
    summaries: List[RunSummary] = field(default_factory=list)
    exhausted: bool = False


def execute_shard(
    task: WorkerTask,
    emit: Optional[Callable[[RunSummary], None]] = None,
) -> ShardOutcome:
    """Run one shard to completion in this process.

    ``emit`` is called with each run's summary as it completes (the
    streaming hook: the process worker posts to the result queue, inline
    mode feeds the orchestrator's aggregator directly).
    """
    executor = RunExecutor(task.config)
    outcome = ShardOutcome(shard_id=task.shard.shard_id)

    def on_run(run: ExplorationRun) -> None:
        summary = executor.summarize(run)
        outcome.summaries.append(summary)
        if emit is not None:
            emit(summary)

    shard = task.shard
    if shard.mode == "systematic":
        result = executor.explore(
            "systematic",
            roots=[list(p) for p in shard.prefixes],
            max_runs=shard.max_runs,
            stop_on_failure=task.stop_on_failure,
            on_run=on_run,
            keep_runs=False,
        )
        outcome.exhausted = result.exhausted
    elif shard.mode in ("random", "pct"):
        executor.explore(
            shard.mode,
            seeds=shard.seeds,
            stop_on_failure=task.stop_on_failure,
            on_run=on_run,
            keep_runs=False,
        )
    else:
        raise ValueError(f"unknown shard mode {shard.mode!r}")
    return outcome


def worker_main(task: WorkerTask, queue) -> None:
    """Child-process entry point: execute the shard, streaming messages.

    Message protocol (all tuples, all picklable):

    * ``("frame", shard_id, frame_dict)`` — one
      :class:`~repro.obs.live.frames.TelemetryFrame` per completed run,
      carrying the run's summary plus shard-local counters (runs so far,
      timeouts) for live telemetry;
    * ``("done", shard_id, exhausted)`` — the shard finished;
    * ``("fail", shard_id, error_text)`` — the shard raised; the
      orchestrator decides whether to requeue.

    The orchestrator also still accepts the pre-frame
    ``("run", shard_id, summary_dict)`` message for compatibility with
    out-of-tree workers.

    A worker that dies without posting ``done``/``fail`` (hard crash,
    ``kill -9``, segfault in an extension) is detected by the orchestrator
    via process liveness — that is the crash-isolation contract.
    """
    shard_id = task.shard.shard_id
    runs = 0
    timeouts = 0

    def emit(summary: RunSummary) -> None:
        nonlocal runs, timeouts
        runs += 1
        if summary.status == RunStatus.TIMEOUT.value:
            timeouts += 1
        frame = TelemetryFrame.for_run(
            shard_id, summary, runs=runs, timeouts=timeouts
        )
        queue.put(("frame", shard_id, frame.to_dict()))

    try:
        outcome = execute_shard(task, emit=emit)
        queue.put(("done", shard_id, outcome.exhausted))
    except BaseException as exc:  # noqa: BLE001 - report, then die quietly
        try:
            queue.put(("fail", shard_id, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
