"""Named campaign workloads: registered program factories.

A campaign worker lives in another process, so it cannot receive a
closure — it receives a *factory spec string* and rebuilds the program
itself.  Two spellings resolve:

* a registry name (``"pc-bug"``, ``"deadlock-pair"``, ...) — the standard
  Ext-B workloads, pre-wired below;
* ``"module:function"`` — any importable :data:`ProgramFactory`
  (a callable taking a scheduler and returning an unrun ``Kernel``),
  which is how user code plugs its own programs into ``repro campaign``
  and ``repro explore``.
"""

from __future__ import annotations

import importlib
from typing import Dict

from repro.run.registry import WORKLOADS as _REGISTRY
from repro.run.registry import close_matches, register_workload
from repro.testing.explorer import ProgramFactory
from repro.vm import Acquire, Kernel, Release, SemAcquire, SemRelease, Yield

__all__ = [
    "WORKLOADS",
    "barrier_template",
    "buffer_template",
    "pair_template",
    "pc_template",
    "resolve_factory",
    "rw_template",
    "sem_template",
    "workload_names",
]


def _pc_workload(component_cls) -> ProgramFactory:
    """The Ext-B producer-consumer shape: 3 consumers racing 2 producers
    over one shared monitor."""

    def factory(scheduler) -> Kernel:
        kernel = Kernel(scheduler=scheduler)
        pc = kernel.register(component_cls())

        def consumer():
            yield from pc.receive()

        def producer(payload):
            yield from pc.send(payload)

        for i in range(3):
            kernel.spawn(consumer, name=f"c{i}")
        kernel.spawn(producer, "ab", name="p1")
        kernel.spawn(producer, "c", name="p2")
        return kernel

    return factory


@register_workload("pc")
def pc_template(component_cls) -> ProgramFactory:
    """Workload *template*: the Ext-B producer-consumer shape over any
    registered component (``RunConfig(workload="pc", component=...)``)."""
    return _pc_workload(component_cls)


#: marks "pc" as a template: it takes a component class, not a scheduler
pc_template.needs_component = True


@register_workload("buffer")
def buffer_template(component_cls) -> ProgramFactory:
    """Bounded-buffer shape over any ``put``/``get`` component: a
    capacity-1 buffer squeezed by 3 consumers and 3 queued puts, so both
    the full-buffer and the empty-buffer waits are exercised often."""

    def factory(scheduler) -> Kernel:
        kernel = Kernel(scheduler=scheduler)
        buf = kernel.register(component_cls(1))

        def consumer():
            yield from buf.get()

        def producer(items):
            for item in items:
                yield from buf.put(item)

        for i in range(3):
            kernel.spawn(consumer, name=f"c{i}")
        kernel.spawn(producer, ["a", "b"], name="p1")
        kernel.spawn(producer, ["c"], name="p2")
        return kernel

    return factory


buffer_template.needs_component = True


@register_workload("rw")
def rw_template(component_cls) -> ProgramFactory:
    """Readers-writers shape over any ``start_read``/``end_read`` /
    ``start_write``/``end_write`` component: 2 readers overlapping with
    2 writers, so both the reader and the writer waits are exercised."""

    def factory(scheduler) -> Kernel:
        kernel = Kernel(scheduler=scheduler)
        rw = kernel.register(component_cls())

        def reader():
            yield from rw.start_read()
            yield Yield()
            yield from rw.end_read()

        def writer():
            yield from rw.start_write()
            yield Yield()
            yield from rw.end_write()

        for i in range(2):
            kernel.spawn(reader, name=f"r{i}")
        for i in range(2):
            kernel.spawn(writer, name=f"w{i}")
        return kernel

    return factory


rw_template.needs_component = True


@register_workload("sem")
def sem_template(component_cls) -> ProgramFactory:
    """Permit-pool shape over any ``acquire``/``release`` component
    (monitor-built :class:`Semaphore` or :class:`NativeSemaphore` alike):
    3 workers cycle through one permit, so the empty-pool block is
    exercised under contention."""

    def factory(scheduler) -> Kernel:
        kernel = Kernel(scheduler=scheduler, max_steps=3000)
        sem = kernel.register(component_cls())

        def worker():
            yield from sem.acquire()
            yield Yield()
            yield from sem.release()

        for i in range(3):
            kernel.spawn(worker, name=f"u{i}")
        return kernel

    return factory


sem_template.needs_component = True


@register_workload("barrier-meet")
def barrier_template(component_cls) -> ProgramFactory:
    """Barrier rendezvous over any ``arrive`` component built for 3
    parties (monitor-built :class:`CyclicBarrier` or
    :class:`NativeBarrier` alike): 3 threads meet once."""

    def factory(scheduler) -> Kernel:
        kernel = Kernel(scheduler=scheduler, max_steps=3000)
        barrier = kernel.register(component_cls(3))

        def party():
            index = yield from barrier.arrive()
            return index

        for i in range(3):
            kernel.spawn(party, name=f"t{i}")
        return kernel

    return factory


barrier_template.needs_component = True


@register_workload("pair")
def pair_template(component_cls) -> ProgramFactory:
    """Nested-lock shape over any ``transfer(source, target, amount)``
    component: two opposite-direction transfers between two accounts —
    the schedule space where lock-order discipline matters."""

    def factory(scheduler) -> Kernel:
        from repro.components import Account

        kernel = Kernel(scheduler=scheduler)
        a = kernel.register(Account(10), name="A")
        b = kernel.register(Account(10), name="B")
        pair = kernel.register(component_cls())

        def t1():
            yield from pair.transfer(a, b, 1)

        def t2():
            yield from pair.transfer(b, a, 1)

        kernel.spawn(t1, name="t1")
        kernel.spawn(t2, name="t2")
        return kernel

    return factory


pair_template.needs_component = True


@register_workload("pc-ok")
def pc_ok(scheduler) -> Kernel:
    """Correct producer-consumer (should complete under every schedule)."""
    from repro.components import ProducerConsumer

    return _pc_workload(ProducerConsumer)(scheduler)


@register_workload("pc-bug")
def pc_bug(scheduler) -> Kernel:
    """The bug-seeded producer-consumer campaign workload: ``notify``
    instead of ``notifyAll`` loses wakeups under some schedules (FF-T5)."""
    from repro.components.faulty import SingleNotifyProducerConsumer

    return _pc_workload(SingleNotifyProducerConsumer)(scheduler)


@register_workload("pc-no-notify")
def pc_no_notify(scheduler) -> Kernel:
    """Producer-consumer whose send never notifies (FF-T5, deterministic
    once a consumer waits)."""
    from repro.components.faulty import NoNotifyProducerConsumer

    return _pc_workload(NoNotifyProducerConsumer)(scheduler)


@register_workload("deadlock-pair")
def deadlock_pair(scheduler) -> Kernel:
    """Two opposite-direction transfers over unordered account locks
    (FF-T2/FF-T4 deadlock on some schedules)."""
    from repro.components import Account
    from repro.components.faulty import DeadlockPair

    kernel = Kernel(scheduler=scheduler)
    a = kernel.register(Account(10), name="A")
    b = kernel.register(Account(10), name="B")
    pair = kernel.register(DeadlockPair())

    def t1():
        yield from pair.transfer(a, b, 1)

    def t2():
        yield from pair.transfer(b, a, 1)

    kernel.spawn(t1, name="t1")
    kernel.spawn(t2, name="t2")
    return kernel


@register_workload("mixed-deadlock")
def mixed_deadlock(scheduler) -> Kernel:
    """A monitor and a semaphore closing one wait-for cycle: ``t1`` takes
    the only permit then blocks entering ``m``; ``t2`` owns ``m`` and
    blocks acquiring the permit ``t1`` holds.  Deadlocks on schedules
    that interleave the two acquires — the smallest *mixed-primitive*
    deadlock the extended wait-for graph must close over."""
    kernel = Kernel(scheduler=scheduler)
    kernel.new_monitor("m")
    kernel.new_semaphore("s", permits=1)

    def t1():
        yield SemAcquire("s")
        yield Yield()
        yield Acquire("m")
        yield Release("m")
        yield SemRelease("s")

    def t2():
        yield Acquire("m")
        yield Yield()
        yield SemAcquire("s")
        yield SemRelease("s")
        yield Release("m")

    kernel.spawn(t1, name="t1")
    kernel.spawn(t2, name="t2")
    return kernel


@register_workload("racing-locks")
def racing_locks(scheduler) -> Kernel:
    """Two bare monitors taken in opposite orders — the smallest workload
    whose schedule tree mixes deadlocks and completions."""
    kernel = Kernel(scheduler=scheduler)
    kernel.new_monitor("m1")
    kernel.new_monitor("m2")

    def worker(first, second):
        yield Acquire(first)
        yield Yield()
        yield Acquire(second)
        yield Release(second)
        yield Release(first)

    kernel.spawn(worker, "m1", "m2", name="a")
    kernel.spawn(worker, "m2", "m1", name="b")
    return kernel


#: Backwards-compatible dict view of the *directly runnable* workloads
#: (templates like ``"pc"`` live only in the registry — they need a
#: component before they are a ``ProgramFactory``).
WORKLOADS: Dict[str, ProgramFactory] = {
    "pc-ok": pc_ok,
    "pc-bug": pc_bug,
    "pc-no-notify": pc_no_notify,
    "deadlock-pair": deadlock_pair,
    "mixed-deadlock": mixed_deadlock,
    "racing-locks": racing_locks,
}


def workload_names() -> list:
    return _REGISTRY.names()


def resolve_factory(spec: str) -> ProgramFactory:
    """Resolve a factory spec: registry name or ``module:function``.

    Registry names may resolve to a workload *template* (marked with
    ``needs_component``); callers that need a runnable factory go through
    ``RunConfig.build_factory``, which pairs templates with a component.
    """
    if spec in _REGISTRY:
        return _REGISTRY.get(spec)
    if ":" not in spec:
        names = workload_names()
        near = close_matches(spec, names)
        nearest = f"did you mean {', '.join(near)}? " if near else ""
        raise ValueError(
            f"unknown workload {spec!r} ({nearest}known: {', '.join(names)}; "
            f"or give module:function)"
        )
    module_name, func_name = spec.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(f"cannot import factory module {module_name!r}: {exc}")
    factory = getattr(module, func_name, None)
    if not callable(factory):
        raise ValueError(f"{module_name!r} has no factory callable {func_name!r}")
    return factory
