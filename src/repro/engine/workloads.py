"""Named campaign workloads: registered program factories.

A campaign worker lives in another process, so it cannot receive a
closure — it receives a *factory spec string* and rebuilds the program
itself.  Two spellings resolve:

* a registry name (``"pc-bug"``, ``"deadlock-pair"``, ...) — the standard
  Ext-B workloads, pre-wired below;
* ``"module:function"`` — any importable :data:`ProgramFactory`
  (a callable taking a scheduler and returning an unrun ``Kernel``),
  which is how user code plugs its own programs into ``repro campaign``
  and ``repro explore``.
"""

from __future__ import annotations

import importlib
from typing import Dict

from repro.run.registry import WORKLOADS as _REGISTRY
from repro.run.registry import register_workload
from repro.testing.explorer import ProgramFactory
from repro.vm import Acquire, Kernel, Release, Yield

__all__ = ["WORKLOADS", "pc_template", "resolve_factory", "workload_names"]


def _pc_workload(component_cls) -> ProgramFactory:
    """The Ext-B producer-consumer shape: 3 consumers racing 2 producers
    over one shared monitor."""

    def factory(scheduler) -> Kernel:
        kernel = Kernel(scheduler=scheduler)
        pc = kernel.register(component_cls())

        def consumer():
            yield from pc.receive()

        def producer(payload):
            yield from pc.send(payload)

        for i in range(3):
            kernel.spawn(consumer, name=f"c{i}")
        kernel.spawn(producer, "ab", name="p1")
        kernel.spawn(producer, "c", name="p2")
        return kernel

    return factory


@register_workload("pc")
def pc_template(component_cls) -> ProgramFactory:
    """Workload *template*: the Ext-B producer-consumer shape over any
    registered component (``RunConfig(workload="pc", component=...)``)."""
    return _pc_workload(component_cls)


#: marks "pc" as a template: it takes a component class, not a scheduler
pc_template.needs_component = True


@register_workload("pc-ok")
def pc_ok(scheduler) -> Kernel:
    """Correct producer-consumer (should complete under every schedule)."""
    from repro.components import ProducerConsumer

    return _pc_workload(ProducerConsumer)(scheduler)


@register_workload("pc-bug")
def pc_bug(scheduler) -> Kernel:
    """The bug-seeded producer-consumer campaign workload: ``notify``
    instead of ``notifyAll`` loses wakeups under some schedules (FF-T5)."""
    from repro.components.faulty import SingleNotifyProducerConsumer

    return _pc_workload(SingleNotifyProducerConsumer)(scheduler)


@register_workload("pc-no-notify")
def pc_no_notify(scheduler) -> Kernel:
    """Producer-consumer whose send never notifies (FF-T5, deterministic
    once a consumer waits)."""
    from repro.components.faulty import NoNotifyProducerConsumer

    return _pc_workload(NoNotifyProducerConsumer)(scheduler)


@register_workload("deadlock-pair")
def deadlock_pair(scheduler) -> Kernel:
    """Two opposite-direction transfers over unordered account locks
    (FF-T2/FF-T4 deadlock on some schedules)."""
    from repro.components import Account
    from repro.components.faulty import DeadlockPair

    kernel = Kernel(scheduler=scheduler)
    a = kernel.register(Account(10), name="A")
    b = kernel.register(Account(10), name="B")
    pair = kernel.register(DeadlockPair())

    def t1():
        yield from pair.transfer(a, b, 1)

    def t2():
        yield from pair.transfer(b, a, 1)

    kernel.spawn(t1, name="t1")
    kernel.spawn(t2, name="t2")
    return kernel


@register_workload("racing-locks")
def racing_locks(scheduler) -> Kernel:
    """Two bare monitors taken in opposite orders — the smallest workload
    whose schedule tree mixes deadlocks and completions."""
    kernel = Kernel(scheduler=scheduler)
    kernel.new_monitor("m1")
    kernel.new_monitor("m2")

    def worker(first, second):
        yield Acquire(first)
        yield Yield()
        yield Acquire(second)
        yield Release(second)
        yield Release(first)

    kernel.spawn(worker, "m1", "m2", name="a")
    kernel.spawn(worker, "m2", "m1", name="b")
    return kernel


#: Backwards-compatible dict view of the *directly runnable* workloads
#: (templates like ``"pc"`` live only in the registry — they need a
#: component before they are a ``ProgramFactory``).
WORKLOADS: Dict[str, ProgramFactory] = {
    "pc-ok": pc_ok,
    "pc-bug": pc_bug,
    "pc-no-notify": pc_no_notify,
    "deadlock-pair": deadlock_pair,
    "racing-locks": racing_locks,
}


def workload_names() -> list:
    return _REGISTRY.names()


def resolve_factory(spec: str) -> ProgramFactory:
    """Resolve a factory spec: registry name or ``module:function``.

    Registry names may resolve to a workload *template* (marked with
    ``needs_component``); callers that need a runnable factory go through
    ``RunConfig.build_factory``, which pairs templates with a component.
    """
    if spec in _REGISTRY:
        return _REGISTRY.get(spec)
    if ":" not in spec:
        raise ValueError(
            f"unknown workload {spec!r} (known: {', '.join(workload_names())}; "
            f"or give module:function)"
        )
    module_name, func_name = spec.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(f"cannot import factory module {module_name!r}: {exc}")
    factory = getattr(module, func_name, None)
    if not callable(factory):
        raise ValueError(f"{module_name!r} has no factory callable {func_name!r}")
    return factory
