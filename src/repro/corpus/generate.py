"""Corpus generation: labeled mutant components from correct parents.

:func:`generate_corpus` applies the :mod:`repro.corpus.operators` suite
to registered correct components and emits one :class:`VariantRecord`
per distinct mutant — the labeled ground truth a detection-rate sweep
measures against.  Per component the corpus contains:

* a **baseline** (the unmutated class recompiled through the same
  pipeline — a control for the machinery itself);
* every **first-order** mutant (one operator, one site);
* **cross-method pairs** of the synchronization-protocol operators
  (wait/notify edits in *different* methods), capped deterministically —
  compound faults whose expected classes are the union of the parts.

A variant is identified by ``"<Parent>~<site>[+<site>...]"`` (e.g.
``"BoundedBuffer~wait_if@put#0"``) and registered in the PR-4
``COMPONENTS`` registry under exactly that id, so a ``RunConfig`` can
name a mutant the same way it names any component.  The manifest is
JSONL — a header line then one record per line (see ``docs/formats.md``)
— and records a SHA-256 digest of each variant's generated source;
:func:`load_corpus` recompiles variants *from the parent source* and
refuses to register a variant whose recompiled digest disagrees (the
manifest and the checked-out components must match).

Everything here is deterministic: same component set in, byte-identical
manifest out.  Compiled variants carry their generated source in
``linecache`` (under a ``<corpus:...>`` filename), so downstream
source-introspecting analyses (CoFG construction, the T1 static checks)
work on mutants exactly as they do on hand-written components.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import json
import linecache
import sys
import textwrap
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Set, Tuple, Type

from repro.run.registry import COMPONENTS, close_matches, load_builtins

from .operators import (
    OPERATORS,
    MutationError,
    MutationSite,
    apply_site,
    discover_sites,
)

__all__ = [
    "CORPUS_DRIVERS",
    "CorpusError",
    "VariantRecord",
    "compile_variant",
    "generate_corpus",
    "load_corpus",
    "parse_site",
    "read_manifest",
    "resolve_component_name",
    "write_manifest",
]

MANIFEST_SCHEMA = "repro-corpus-manifest"
MANIFEST_VERSION = 1

#: parent component -> workload template that drives it in sweeps
CORPUS_DRIVERS: Dict[str, str] = {
    "BoundedBuffer": "buffer",
    "ReadersWriters": "rw",
    "ProducerConsumer": "pc",
    "OrderedPair": "pair",
}

#: operators eligible for cross-method pairing (the synchronization
#: protocol edits; structural operators pair poorly — e.g. two ``unsync``
#: sites collapse into the same static finding)
_PAIRABLE = ("wait_if", "notify_single", "drop_notify", "dup_notify")

#: cross-method pairs kept per component (deterministic prefix)
DEFAULT_PAIR_CAP = 20


class CorpusError(ValueError):
    """Corpus generation or loading failed."""


@dataclass(frozen=True)
class VariantRecord:
    """One manifest line: a labeled corpus variant."""

    variant_id: str
    parent: str
    class_name: str
    workload: str
    operators: Tuple[str, ...]
    expected: Tuple[str, ...]
    digest: str

    @property
    def is_control(self) -> bool:
        """Baselines and benign mutations: no failure class expected."""
        return not self.expected

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant_id": self.variant_id,
            "parent": self.parent,
            "class_name": self.class_name,
            "workload": self.workload,
            "operators": list(self.operators),
            "expected": list(self.expected),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VariantRecord":
        try:
            return cls(
                variant_id=str(data["variant_id"]),
                parent=str(data["parent"]),
                class_name=str(data["class_name"]),
                workload=str(data["workload"]),
                operators=tuple(data["operators"]),
                expected=tuple(data["expected"]),
                digest=str(data["digest"]),
            )
        except KeyError as exc:
            raise CorpusError(f"manifest record missing field {exc}") from None


def parse_site(label: str) -> MutationSite:
    """Invert :attr:`MutationSite.label` (``"wait_if@put#0"``)."""
    try:
        operator, rest = label.split("@", 1)
        method, index = rest.rsplit("#", 1)
        return MutationSite(operator, method, int(index))
    except ValueError:
        raise CorpusError(f"malformed mutation-site label {label!r}") from None


def resolve_component_name(name: str) -> str:
    """Resolve a possibly snake_case spelling (``bounded_buffer``) to the
    registered component name (``BoundedBuffer``)."""
    load_builtins()
    names = COMPONENTS.names()
    if name in names:
        return name
    key = name.replace("_", "").casefold()
    for registered in names:
        if registered.replace("_", "").casefold() == key:
            return registered
    near = close_matches(name, names)
    nearest = f"did you mean {', '.join(near)}? " if near else ""
    raise CorpusError(
        f"unknown component {name!r} ({nearest}known: {', '.join(names)})"
    )


def _component_ast(cls: Type[Any]) -> ast.ClassDef:
    source = textwrap.dedent(inspect.getsource(cls))
    tree = ast.parse(source)
    node = tree.body[0]
    if not isinstance(node, ast.ClassDef):
        raise CorpusError(f"cannot locate class definition for {cls!r}")
    return node


def _sanitize(label: str) -> str:
    return label.replace("@", "_").replace("#", "_").replace("+", "__")


def _class_name(parent: str, labels: Tuple[str, ...]) -> str:
    suffix = "__".join(_sanitize(label) for label in labels) or "baseline"
    return f"{parent}__{suffix}"


def _variant_id(parent: str, labels: Tuple[str, ...]) -> str:
    return f"{parent}~{'+'.join(labels) or 'baseline'}"


def _build_source(
    parent_cls: Type[Any], labels: Tuple[str, ...]
) -> Tuple[str, str, str]:
    """(source text, digest, pre-rename body) of the variant: the parent
    class with each labeled mutation applied in order, renamed for
    registration.  The pre-rename body supports no-op detection — it is
    comparable against the parent's own unparsed source."""
    node = _component_ast(parent_cls)
    for label in labels:
        node = apply_site(node, parse_site(label))
    node = ast.fix_missing_locations(node)
    body = ast.unparse(node)
    node.name = _class_name(parent_cls.__name__, labels)
    source = ast.unparse(node) + "\n"
    digest = hashlib.sha256(source.encode()).hexdigest()
    return source, digest, body


def _exec_namespace(parent_cls: Type[Any]) -> Dict[str, Any]:
    from repro.vm import (
        Acquire,
        MonitorComponent,
        Notify,
        NotifyAll,
        Release,
        Wait,
        Yield,
        synchronized,
        unsynchronized,
    )

    module = sys.modules.get(parent_cls.__module__)
    namespace: Dict[str, Any] = dict(vars(module)) if module else {}
    namespace.update(
        {
            "Acquire": Acquire,
            "MonitorComponent": MonitorComponent,
            "Notify": Notify,
            "NotifyAll": NotifyAll,
            "Release": Release,
            "Wait": Wait,
            "Yield": Yield,
            "synchronized": synchronized,
            "unsynchronized": unsynchronized,
        }
    )
    return namespace


def compile_variant(parent_cls: Type[Any], record: VariantRecord) -> Type[Any]:
    """Recompile a manifest record into a loadable component class.

    The recompiled source's digest must match the manifest's — a mismatch
    means the checked-out parent (or the operator suite) changed since
    the manifest was generated, and the corpus labels can no longer be
    trusted.
    """
    source, digest, _ = _build_source(parent_cls, record.operators)
    if digest != record.digest:
        raise CorpusError(
            f"variant {record.variant_id!r}: source digest mismatch "
            f"(manifest {record.digest[:12]}..., recompiled {digest[:12]}...); "
            f"regenerate the manifest"
        )
    filename = f"<corpus:{record.variant_id}>"
    namespace = _exec_namespace(parent_cls)
    code = compile(source, filename, "exec")
    exec(code, namespace)
    # Source-introspecting analyses (CoFG, static checks) read methods via
    # inspect.getsource; seed linecache so that works for exec'd classes.
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(True),
        filename,
    )
    cls = namespace[record.class_name]
    if not isinstance(cls, type):  # pragma: no cover - exec always binds a class
        raise CorpusError(
            f"variant {record.variant_id!r} did not compile to a class"
        )
    cls.__corpus_variant__ = record.variant_id  # type: ignore[attr-defined]
    return cls


def _expected_for(labels: Iterable[str]) -> Tuple[str, ...]:
    codes: Set[str] = set()
    for label in labels:
        codes.update(OPERATORS[parse_site(label).operator].expected)
    return tuple(sorted(codes))


def _variants_for(
    parent_name: str, pair_cap: int
) -> List[VariantRecord]:
    parent_cls = COMPONENTS.get(parent_name)
    workload = CORPUS_DRIVERS.get(parent_name)
    if workload is None:
        known = ", ".join(sorted(CORPUS_DRIVERS))
        raise CorpusError(
            f"no sweep workload is defined for component {parent_name!r} "
            f"(corpus parents: {known})"
        )
    parent_node = _component_ast(parent_cls)
    parent_source = ast.unparse(parent_node)
    sites = discover_sites(parent_node)

    records: List[VariantRecord] = []
    digests: Set[str] = set()

    def add(labels: Tuple[str, ...]) -> None:
        source, digest, body = _build_source(parent_cls, labels)
        if digest in digests:
            return
        # no-op safety: a "mutation" that reproduces the parent source
        # injects nothing and must not carry a failure label
        if labels and body == parent_source:
            return
        digests.add(digest)
        records.append(
            VariantRecord(
                variant_id=_variant_id(parent_name, labels),
                parent=parent_name,
                class_name=_class_name(parent_name, labels),
                workload=workload,
                operators=labels,
                expected=_expected_for(labels),
                digest=digest,
            )
        )

    add(())  # baseline control
    applicable: List[MutationSite] = []
    for site in sites:
        try:
            add((site.label,))
            applicable.append(site)
        except MutationError:
            continue

    pairs = 0
    pairable = [s for s in applicable if s.operator in _PAIRABLE]
    for i, first in enumerate(pairable):
        for second in pairable[i + 1 :]:
            if first.method == second.method:
                continue
            if pairs >= pair_cap:
                break
            before = len(records)
            add((first.label, second.label))
            if len(records) > before:
                pairs += 1
        if pairs >= pair_cap:
            break
    return records


def generate_corpus(
    components: Iterable[str], pair_cap: int = DEFAULT_PAIR_CAP
) -> List[VariantRecord]:
    """Generate the labeled variant corpus for the named components.

    ``components`` accepts registered names or snake_case spellings;
    the result is deterministic for a given component set and order.
    """
    load_builtins()
    records: List[VariantRecord] = []
    for name in components:
        records.extend(_variants_for(resolve_component_name(name), pair_cap))
    if not records:
        raise CorpusError("no components given: nothing to generate")
    return records


def write_manifest(records: List[VariantRecord], path: str) -> None:
    header = {
        "schema": MANIFEST_SCHEMA,
        "version": MANIFEST_VERSION,
        "components": sorted({r.parent for r in records}),
        "variants": len(records),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def read_manifest(path: str) -> List[VariantRecord]:
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise CorpusError(f"manifest {path!r} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != MANIFEST_SCHEMA:
        raise CorpusError(
            f"{path!r} is not a corpus manifest (schema "
            f"{header.get('schema')!r}, expected {MANIFEST_SCHEMA!r})"
        )
    if int(header.get("version", 0)) > MANIFEST_VERSION:
        raise CorpusError(
            f"manifest version {header.get('version')} is newer than this "
            f"tool understands ({MANIFEST_VERSION})"
        )
    return [VariantRecord.from_dict(json.loads(line)) for line in lines[1:]]


def load_corpus(
    records: Iterable[VariantRecord],
    register: bool = True,
) -> Dict[str, Type[Any]]:
    """Recompile every variant (digest-verified) and, by default, register
    each in ``COMPONENTS`` under its variant id."""
    load_builtins()
    loaded: Dict[str, Type[Any]] = {}
    for record in records:
        parent_cls = COMPONENTS.get(record.parent)
        cls = compile_variant(parent_cls, record)
        loaded[record.variant_id] = cls
        if register:
            COMPONENTS.add(record.variant_id, cls, replace=True)
    return loaded
