"""Corpus report: detection rates against the mutation ground truth.

Joins sweep results with their manifest labels to answer the evaluation
question the corpus exists for: *when a known failure class is injected,
do the detectors find it — and do they cry wolf when nothing is wrong?*

Per failure class, over the non-control variants:

* **TP** — variants expecting the class where it was detected;
* **FN** — variants expecting the class where it was not;
* **FP** — variants (including controls) where the class was detected
  without being expected;

precision = TP / (TP + FP), recall = TP / (TP + FN).  The confusion
table counts, for every expected-label row (``control`` for baselines
and benign mutations), how often each class was detected — the honest
view of conflations like a ``lock_shuffle`` deadlock classifying as
FF-T4 where the registry's exemplar says FF-T2 (both are right: Table 1
lists the deadlock cycle under both).

Everything is computed from the deterministic sweep results, so the
rendered report is byte-stable across resumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .sweep import SweepResult

__all__ = ["ClassStats", "CorpusReport", "build_report"]


@dataclass(frozen=True)
class ClassStats:
    """Detection accuracy for one failure class over the corpus."""

    code: str
    tp: int
    fn: int
    fp: int

    @property
    def precision(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 1.0

    @property
    def recall(self) -> float:
        total = self.tp + self.fn
        return self.tp / total if total else 1.0


@dataclass
class CorpusReport:
    """Per-class accuracy plus the expected-vs-detected confusion table."""

    results: List[SweepResult]
    stats: Dict[str, ClassStats] = field(default_factory=dict)
    #: expected-label row ("+"-joined classes, or "control") ->
    #: Counter of detected class codes; "(clean)" counts no-finding runs
    confusion: Dict[str, Counter[str]] = field(default_factory=dict)

    @property
    def variants(self) -> int:
        return len(self.results)

    @property
    def faulty(self) -> List[SweepResult]:
        return [r for r in self.results if not r.is_control]

    @property
    def controls(self) -> List[SweepResult]:
        return [r for r in self.results if r.is_control]

    @property
    def caught(self) -> List[SweepResult]:
        return [r for r in self.faulty if r.caught]

    @property
    def missed(self) -> List[SweepResult]:
        return [r for r in self.faulty if not r.caught]

    @property
    def noisy_controls(self) -> List[SweepResult]:
        """Controls where any class was detected (false alarms)."""
        return [r for r in self.controls if r.detected]

    def catch_rate(self) -> float:
        return len(self.caught) / len(self.faulty) if self.faulty else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variants": self.variants,
            "faulty": len(self.faulty),
            "controls": len(self.controls),
            "caught": len(self.caught),
            "catch_rate": round(self.catch_rate(), 4),
            "classes": {
                code: {
                    "tp": s.tp,
                    "fn": s.fn,
                    "fp": s.fp,
                    "precision": round(s.precision, 4),
                    "recall": round(s.recall, 4),
                }
                for code, s in sorted(self.stats.items())
            },
            "confusion": {
                row: dict(sorted(counts.items()))
                for row, counts in sorted(self.confusion.items())
            },
            "missed": [r.variant_id for r in self.missed],
            "noisy_controls": [r.variant_id for r in self.noisy_controls],
        }

    def describe(self) -> str:
        lines = [
            f"corpus report: {self.variants} variants "
            f"({len(self.faulty)} faulty, {len(self.controls)} controls)",
            f"  caught: {len(self.caught)}/{len(self.faulty)} faulty variants "
            f"({self.catch_rate():.0%}) detected as an expected class",
        ]
        if self.stats:
            lines.append("  per-class detection:")
            lines.append(
                "    class   precision  recall   (tp/fn/fp)"
            )
            for code in sorted(self.stats):
                s = self.stats[code]
                lines.append(
                    f"    {code:<7} {s.precision:>8.0%} {s.recall:>7.0%}"
                    f"   ({s.tp}/{s.fn}/{s.fp})"
                )
        lines.append("  confusion (expected -> detected):")
        for row in sorted(self.confusion):
            counts = self.confusion[row]
            bits = ", ".join(
                f"{code}: {n}" for code, n in sorted(counts.items())
            )
            lines.append(f"    {row:<24} {bits or '-'}")
        if self.missed:
            lines.append("  missed variants:")
            lines.extend(
                f"    {r.variant_id} (expected {', '.join(r.expected)}; "
                f"detected {', '.join(r.detected) or 'nothing'})"
                for r in self.missed
            )
        if self.noisy_controls:
            lines.append("  noisy controls (false alarms):")
            lines.extend(
                f"    {r.variant_id} (detected {', '.join(r.detected)})"
                for r in self.noisy_controls
            )
        else:
            lines.append("  controls: all clean")
        return "\n".join(lines)


def build_report(results: List[SweepResult]) -> CorpusReport:
    """Fold sweep results into per-class stats and the confusion table."""
    report = CorpusReport(results=list(results))
    codes = sorted(
        {c for r in results for c in r.expected}
        | {c for r in results for c in r.detected}
    )
    for code in codes:
        tp = fn = fp = 0
        for r in results:
            expected = code in r.expected
            detected = code in r.detected
            if expected and detected:
                tp += 1
            elif expected:
                fn += 1
            elif detected:
                fp += 1
        report.stats[code] = ClassStats(code=code, tp=tp, fn=fn, fp=fp)
    for r in results:
        row = "+".join(r.expected) if r.expected else "control"
        counts = report.confusion.setdefault(row, Counter())
        if r.detected:
            counts.update(r.detected)
        else:
            counts["(clean)"] += 1
    return report
