"""AST-level mutation operators that inject Table-1 failure classes.

Each operator rewrites one *site* in a correct monitor component's source
to reproduce, mechanically, a deviation the paper's HAZOP study seeded by
hand (the ``components/faulty/*`` pairs are the oracle exemplars — e.g.
``wait_if`` is exactly the ``IfGuardProducerConsumer`` edit, applied to
any guarded wait in any component):

========================  =======================  ====================
operator                  edit                     expected class(es)
========================  =======================  ====================
``wait_if``               ``while g: wait`` →      EF-T5
                          ``if g: wait``
``notify_single``         ``notify_all`` →         FF-T5
                          ``notify``
``drop_notify``           delete a notify          FF-T5
``dup_notify``            duplicate a notify       *(none — control)*
``lock_shuffle``          drop the ``sorted``      FF-T2, FF-T4
                          lock-ordering step
``drop_release``          delete an explicit       FF-T4
                          ``Release``
``over_sync``             add a synchronized       EF-T1
                          method around nothing
``unsync``                ``@synchronized`` →      FF-T1
                          ``@unsynchronized``
``swallow_interrupt``     wrap a ``yield Wait``    EV-INT
                          in ``except
                          InterruptedError: pass``
``sem_release_drop``      ``yield SemRelease`` →   FF-S3
                          return without
                          releasing
========================  =======================  ====================

``unsync`` only applies to methods with no monitor syscalls (a wait or
notify without the lock would crash, masking the intended interference
failure); ``dup_notify`` deliberately expects *nothing* — an extra
``notify_all`` is benign, and these variants act as sweep controls.

Operators work on the component's :class:`ast.ClassDef`; an *applied*
mutation is rejected upstream when it does not change the unparsed
source (no-op safety).
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

__all__ = [
    "MutationError",
    "MutationOperator",
    "MutationSite",
    "OPERATORS",
    "apply_site",
    "discover_sites",
]

_NOTIFY_NAMES = ("Notify", "NotifyAll")
#: name of the method :data:`over_sync` grafts onto the class
PROBE_METHOD = "corpus_probe"


class MutationError(ValueError):
    """A mutation site could not be applied to the given class AST."""


@dataclass(frozen=True)
class MutationSite:
    """One applicable location of one operator within a component."""

    operator: str
    #: method name; ``"cls"`` for class-level operators
    method: str
    #: ordinal among this operator's sites in that method (source order)
    index: int

    @property
    def label(self) -> str:
        return f"{self.operator}@{self.method}#{self.index}"


def _methods(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [node for node in cls.body if isinstance(node, ast.FunctionDef)]


def _stmt_lists(stmts: List[ast.stmt]) -> Iterator[List[ast.stmt]]:
    """Every statement list under ``stmts``, in source order."""
    yield stmts
    for stmt in stmts:
        for attr in ("body", "orelse", "finalbody"):
            child = getattr(stmt, attr, None)
            if child:
                yield from _stmt_lists(child)


def _yield_call_name(stmt: ast.stmt) -> str:
    """The syscall name when ``stmt`` is ``yield SomeCall(...)``, else ``""``."""
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Yield)
        and isinstance(stmt.value.value, ast.Call)
        and isinstance(stmt.value.value.func, ast.Name)
    ):
        return stmt.value.value.func.id
    return ""


def _is_wait_loop(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.While)
        and not stmt.orelse
        and bool(stmt.body)
        and all(_yield_call_name(s) == "Wait" for s in stmt.body)
    )


def _count(func: ast.FunctionDef, predicate: Callable[[ast.stmt], bool]) -> int:
    return sum(
        1 for stmts in _stmt_lists(func.body) for s in stmts if predicate(s)
    )


def _rewrite_nth(
    func: ast.FunctionDef,
    predicate: Callable[[ast.stmt], bool],
    index: int,
    replacement: Callable[[ast.stmt], List[ast.stmt]],
) -> bool:
    """Replace the ``index``-th matching statement (source order) with the
    statements ``replacement`` returns; empties become ``pass``."""
    seen = 0
    for stmts in _stmt_lists(func.body):
        for i, stmt in enumerate(stmts):
            if not predicate(stmt):
                continue
            if seen == index:
                new = replacement(stmt)
                if not new and len(stmts) == 1:
                    new = [ast.Pass()]
                stmts[i : i + 1] = new
                return True
            seen += 1
    return False


def _has_yield(func: ast.FunctionDef) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in ast.walk(func)
    )


def _touches_self(func: ast.FunctionDef) -> bool:
    self_name = func.args.args[0].arg if func.args.args else "self"
    return any(
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
        and not node.attr.startswith("_")
        for node in ast.walk(func)
    )


def _decorator_name(func: ast.FunctionDef) -> str:
    for deco in func.decorator_list:
        if isinstance(deco, ast.Name):
            return deco.id
    return ""


def _sorted_lock_order(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == "sorted"
        and bool(stmt.value.args)
    )


@dataclass(frozen=True)
class MutationOperator:
    """One named source rewrite, tagged with the Table-1 classes it injects."""

    name: str
    #: failure-class codes this mutation is expected to make detectable
    #: (empty for control operators)
    expected: Tuple[str, ...]
    description: str
    count_sites: Callable[[ast.FunctionDef], int]
    mutate: Callable[[ast.FunctionDef, int], bool]
    class_level: bool = False


def _count_wait_if(func: ast.FunctionDef) -> int:
    return _count(func, _is_wait_loop)


def _apply_wait_if(func: ast.FunctionDef, index: int) -> bool:
    def weaken(stmt: ast.stmt) -> List[ast.stmt]:
        assert isinstance(stmt, ast.While)
        return [ast.If(test=stmt.test, body=stmt.body, orelse=[])]

    return _rewrite_nth(func, _is_wait_loop, index, weaken)


def _count_notify_all(func: ast.FunctionDef) -> int:
    return _count(func, lambda s: _yield_call_name(s) == "NotifyAll")


def _apply_notify_single(func: ast.FunctionDef, index: int) -> bool:
    def narrow(stmt: ast.stmt) -> List[ast.stmt]:
        stmt.value.value.func.id = "Notify"  # type: ignore[attr-defined]
        return [stmt]

    return _rewrite_nth(
        func, lambda s: _yield_call_name(s) == "NotifyAll", index, narrow
    )


def _count_notify(func: ast.FunctionDef) -> int:
    return _count(func, lambda s: _yield_call_name(s) in _NOTIFY_NAMES)


def _apply_drop_notify(func: ast.FunctionDef, index: int) -> bool:
    return _rewrite_nth(
        func,
        lambda s: _yield_call_name(s) in _NOTIFY_NAMES,
        index,
        lambda stmt: [],
    )


def _apply_dup_notify(func: ast.FunctionDef, index: int) -> bool:
    return _rewrite_nth(
        func,
        lambda s: _yield_call_name(s) in _NOTIFY_NAMES,
        index,
        lambda stmt: [stmt, copy.deepcopy(stmt)],
    )


def _count_lock_shuffle(func: ast.FunctionDef) -> int:
    acquires = _count(func, lambda s: _yield_call_name(s) == "Acquire")
    if acquires < 2:
        return 0
    return _count(func, _sorted_lock_order)


def _apply_lock_shuffle(func: ast.FunctionDef, index: int) -> bool:
    def drop_ordering(stmt: ast.stmt) -> List[ast.stmt]:
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.Call)
        stmt.value = stmt.value.args[0]
        return [stmt]

    return _rewrite_nth(func, _sorted_lock_order, index, drop_ordering)


def _count_release(func: ast.FunctionDef) -> int:
    return _count(func, lambda s: _yield_call_name(s) == "Release")


def _apply_drop_release(func: ast.FunctionDef, index: int) -> bool:
    return _rewrite_nth(
        func,
        lambda s: _yield_call_name(s) == "Release",
        index,
        lambda stmt: [],
    )


def _count_unsync(func: ast.FunctionDef) -> int:
    applicable = (
        _decorator_name(func) == "synchronized"
        and not _has_yield(func)
        and _touches_self(func)
    )
    return 1 if applicable else 0


def _apply_unsync(func: ast.FunctionDef, index: int) -> bool:
    if index != 0 or _count_unsync(func) == 0:
        return False
    for deco in func.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "synchronized":
            deco.id = "unsynchronized"
            return True
    return False


_PROBE_SOURCE = f'''\
@synchronized
def {PROBE_METHOD}(self):
    """Injected over-synchronization: a lock that guards no shared state."""
    return 0
'''


def _apply_over_sync(cls: ast.ClassDef) -> bool:
    if any(func.name == PROBE_METHOD for func in _methods(cls)):
        return False
    probe = ast.parse(_PROBE_SOURCE).body[0]
    cls.body.append(probe)
    return True


def _count_wait_yield(func: ast.FunctionDef) -> int:
    return _count(func, lambda s: _yield_call_name(s) == "Wait")


def _apply_swallow_interrupt(func: ast.FunctionDef, index: int) -> bool:
    def wrap(stmt: ast.stmt) -> List[ast.stmt]:
        handler = ast.ExceptHandler(
            type=ast.Name(id="InterruptedError", ctx=ast.Load()),
            name=None,
            body=[ast.Pass()],
        )
        return [
            ast.Try(body=[stmt], handlers=[handler], orelse=[], finalbody=[])
        ]

    return _rewrite_nth(
        func, lambda s: _yield_call_name(s) == "Wait", index, wrap
    )


def _count_sem_release(func: ast.FunctionDef) -> int:
    return _count(func, lambda s: _yield_call_name(s) == "SemRelease")


def _apply_sem_release_drop(func: ast.FunctionDef, index: int) -> bool:
    def drop(stmt: ast.stmt) -> List[ast.stmt]:
        # `return` + unreachable bare yield: the method stays a generator
        # (the kernel drives it with `yield from`) but the permit is never
        # returned to the pool — exactly the LostPermitSemaphore defect.
        return [
            ast.Return(value=ast.Constant(value=None)),
            ast.Expr(value=ast.Yield(value=None)),
        ]

    return _rewrite_nth(
        func, lambda s: _yield_call_name(s) == "SemRelease", index, drop
    )


def _zero(_func: ast.FunctionDef) -> int:
    return 0


def _never(_func: ast.FunctionDef, _index: int) -> bool:
    return False


#: The operator suite, keyed by name (iteration order = table order).
OPERATORS: Dict[str, MutationOperator] = {
    op.name: op
    for op in (
        MutationOperator(
            "wait_if",
            ("EF-T5",),
            "weaken a guarded wait loop from 'while' to 'if'",
            _count_wait_if,
            _apply_wait_if,
        ),
        MutationOperator(
            "notify_single",
            ("FF-T5",),
            "replace notify_all with single notify",
            _count_notify_all,
            _apply_notify_single,
        ),
        MutationOperator(
            "drop_notify",
            ("FF-T5",),
            "delete a notify/notify_all",
            _count_notify,
            _apply_drop_notify,
        ),
        MutationOperator(
            "dup_notify",
            (),
            "duplicate a notify (benign control)",
            _count_notify,
            _apply_dup_notify,
        ),
        MutationOperator(
            "lock_shuffle",
            ("FF-T2", "FF-T4"),
            "drop the global lock-ordering step on nested acquires",
            _count_lock_shuffle,
            _apply_lock_shuffle,
        ),
        MutationOperator(
            "drop_release",
            ("FF-T4",),
            "delete an explicit lock release",
            _count_release,
            _apply_drop_release,
        ),
        MutationOperator(
            "over_sync",
            ("EF-T1",),
            "add a synchronized method that guards nothing",
            _zero,
            _never,
            class_level=True,
        ),
        MutationOperator(
            "unsync",
            ("FF-T1",),
            "strip synchronization from a syscall-free method",
            _count_unsync,
            _apply_unsync,
        ),
        MutationOperator(
            "swallow_interrupt",
            ("EV-INT",),
            "wrap a wait in 'except InterruptedError: pass'",
            _count_wait_yield,
            _apply_swallow_interrupt,
        ),
        MutationOperator(
            "sem_release_drop",
            ("FF-S3",),
            "drop a semaphore release, leaking the permit",
            _count_sem_release,
            _apply_sem_release_drop,
        ),
    )
}


def discover_sites(cls: ast.ClassDef) -> List[MutationSite]:
    """Every applicable mutation site of every operator, deterministically
    ordered (operator table order, then method source order)."""
    sites: List[MutationSite] = []
    for op in OPERATORS.values():
        if op.class_level:
            sites.append(MutationSite(op.name, "cls", 0))
            continue
        for func in _methods(cls):
            for index in range(op.count_sites(func)):
                sites.append(MutationSite(op.name, func.name, index))
    return sites


def apply_site(cls: ast.ClassDef, site: MutationSite) -> ast.ClassDef:
    """A deep copy of ``cls`` with ``site``'s mutation applied."""
    op = OPERATORS.get(site.operator)
    if op is None:
        raise MutationError(f"unknown mutation operator {site.operator!r}")
    mutated = copy.deepcopy(cls)
    if op.class_level:
        applied = _apply_over_sync(mutated)
    else:
        applied = False
        for func in _methods(mutated):
            if func.name == site.method:
                applied = op.mutate(func, site.index)
                break
    if not applied:
        raise MutationError(
            f"site {site.label} does not exist on class {cls.name!r}"
        )
    return ast.fix_missing_locations(mutated)
