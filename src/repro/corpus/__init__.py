"""Mutation-based component corpus: generation, sweeps, detection rates.

The paper classifies concurrency failures over a handful of hand-written
components; this package mechanizes that ground truth at corpus scale.
:mod:`~repro.corpus.operators` rewrites correct components at the AST
level to inject known Table-1 failure classes; :mod:`~repro.corpus.generate`
turns operator applications into a labeled, digest-verified JSONL
manifest of loadable variants; :mod:`~repro.corpus.sweep` fans the
corpus through the campaign engine (one resumable campaign per
variant); :mod:`~repro.corpus.report` joins detections against labels
into per-class precision/recall and a confusion table.

CLI: ``repro corpus generate | sweep | report`` (see the README
quickstart and ``docs/architecture.md``).
"""

from .generate import (
    CORPUS_DRIVERS,
    CorpusError,
    VariantRecord,
    compile_variant,
    generate_corpus,
    load_corpus,
    read_manifest,
    resolve_component_name,
    write_manifest,
)
from .operators import (
    OPERATORS,
    MutationError,
    MutationOperator,
    MutationSite,
    apply_site,
    discover_sites,
)
from .report import ClassStats, CorpusReport, build_report
from .sweep import (
    SWEEP_DETECTORS,
    SweepResult,
    read_results,
    sweep_corpus,
    write_results,
)

__all__ = [
    "CORPUS_DRIVERS",
    "ClassStats",
    "CorpusError",
    "CorpusReport",
    "MutationError",
    "MutationOperator",
    "MutationSite",
    "OPERATORS",
    "SWEEP_DETECTORS",
    "SweepResult",
    "VariantRecord",
    "apply_site",
    "build_report",
    "compile_variant",
    "discover_sites",
    "generate_corpus",
    "load_corpus",
    "read_manifest",
    "read_results",
    "resolve_component_name",
    "sweep_corpus",
    "write_manifest",
    "write_results",
]
