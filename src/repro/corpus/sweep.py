"""Corpus sweeps: one detection campaign per variant, resumably.

:func:`sweep_corpus` fans a generated corpus through the PR-1 campaign
engine — one :class:`~repro.engine.campaign.CampaignSpec` per variant,
each with its own JSONL journal under the sweep directory, so an
interrupted sweep resumes exactly where it stopped (``--resume`` skips
journaled work variant by variant, shard by shard).

Every campaign runs the full online detector pipeline *plus* the
``"reentry"`` detector (the EF-T5 instrument that is not part of the
default seven), inline (``workers=0`` — variants live only in this
process's ``COMPONENTS`` registry) and with ``trace_mode="none"`` so a
large corpus stays O(detector state) per run.  Detected classes merge
two evidence streams, mirroring Table 1's split of detection techniques:

* **dynamic** — the campaign's per-class counts over unique schedules;
* **static**  — :func:`repro.analysis.check_component` findings on the
  variant source (the T1 classes are prescribed static analysis, and a
  sweep workload never calls an ``over_sync`` probe method).

Some mutants legitimately survive: weakening only *one* side of a
bounded buffer to ``notify`` (``notify_single@put`` alone, say) is
near-equivalent under the sweep workloads, because every successful call
to the *unmutated* side still ``notifyAll``-s and re-wakes any stranded
waiter — only the double-sided pair variant deadlocks.  The report
lists survivors under "missed variants" rather than hiding them; that
honesty is the point of a labeled corpus.

Results serialize deterministically (no wall-clock fields, sorted keys):
the same corpus swept with the same seed budget — interrupted and
resumed or not — yields a byte-identical results file, and therefore a
byte-identical report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis import check_component
from repro.engine import CampaignSpec, run_campaign
from repro.engine.progress import ProgressTracker
from repro.run.config import DETECTOR_ORDER
from repro.run.registry import COMPONENTS

from .generate import CorpusError, VariantRecord

__all__ = [
    "SWEEP_DETECTORS",
    "SweepResult",
    "read_results",
    "sweep_corpus",
    "write_results",
]

RESULTS_SCHEMA = "repro-corpus-results"
RESULTS_VERSION = 1

#: the detector set every sweep campaign runs: the default seven plus
#: the premature-reentry detector (EF-T5 needs it)
SWEEP_DETECTORS: Tuple[str, ...] = DETECTOR_ORDER + ("reentry",)

#: random-scheduler seeds explored per variant unless overridden
DEFAULT_SEEDS = 40


@dataclass(frozen=True)
class SweepResult:
    """Detection outcome for one corpus variant."""

    variant_id: str
    parent: str
    operators: Tuple[str, ...]
    expected: Tuple[str, ...]
    #: failure classes detected (dynamic ∪ static), sorted
    detected: Tuple[str, ...]
    #: dynamically detected class -> unique schedules implicating it
    class_counts: Dict[str, int]
    #: classes contributed by the static checks alone
    static_classes: Tuple[str, ...]
    runs: int
    failures: int
    statuses: Dict[str, int]

    @property
    def is_control(self) -> bool:
        return not self.expected

    @property
    def caught(self) -> bool:
        """An expected class was detected (undefined for controls)."""
        return bool(set(self.expected) & set(self.detected))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant_id": self.variant_id,
            "parent": self.parent,
            "operators": list(self.operators),
            "expected": list(self.expected),
            "detected": list(self.detected),
            "class_counts": dict(sorted(self.class_counts.items())),
            "static_classes": list(self.static_classes),
            "runs": self.runs,
            "failures": self.failures,
            "statuses": dict(sorted(self.statuses.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        try:
            return cls(
                variant_id=str(data["variant_id"]),
                parent=str(data["parent"]),
                operators=tuple(data["operators"]),
                expected=tuple(data["expected"]),
                detected=tuple(data["detected"]),
                class_counts={
                    str(k): int(v) for k, v in data["class_counts"].items()
                },
                static_classes=tuple(data.get("static_classes", ())),
                runs=int(data["runs"]),
                failures=int(data["failures"]),
                statuses={str(k): int(v) for k, v in data["statuses"].items()},
            )
        except KeyError as exc:
            raise CorpusError(f"results record missing field {exc}") from None


def _variant_spec(
    record: VariantRecord, sweep_dir: str, seeds: int, timeout: float
) -> CampaignSpec:
    journal = os.path.join(sweep_dir, f"{record.class_name}.journal.jsonl")
    return CampaignSpec(
        factory=record.workload,
        component=record.variant_id,
        mode="random",
        budget=seeds,
        workers=0,
        shard_size=min(seeds, 25),
        detectors=SWEEP_DETECTORS,
        trace_mode="none",
        run_timeout=timeout,
        journal_path=journal,
    )


def sweep_corpus(
    records: Iterable[VariantRecord],
    sweep_dir: str,
    seeds: int = DEFAULT_SEEDS,
    resume: bool = False,
    timeout: float = 10.0,
    on_variant: Optional[Callable[[SweepResult], None]] = None,
) -> List[SweepResult]:
    """Run one detection campaign per variant; returns results in corpus
    order.  Variants must already be registered (see
    :func:`repro.corpus.generate.load_corpus`).

    With ``resume=True``, variants whose journals already cover the
    budget are merged from disk without re-executing a single run.
    """
    os.makedirs(sweep_dir, exist_ok=True)
    results: List[SweepResult] = []
    for record in records:
        spec = _variant_spec(record, sweep_dir, seeds, timeout)
        journal_exists = spec.journal_path and os.path.exists(spec.journal_path)
        campaign = run_campaign(
            spec,
            resume=bool(resume and journal_exists),
            progress=ProgressTracker(total_runs=seeds, stream=None),
        )
        static_codes = tuple(
            sorted(
                {
                    finding.failure_class.code
                    for finding in check_component(
                        COMPONENTS.get(record.variant_id)
                    )
                }
            )
        )
        dynamic = {code: int(n) for code, n in campaign.class_counts.items()}
        detected = tuple(sorted(set(dynamic) | set(static_codes)))
        result = SweepResult(
            variant_id=record.variant_id,
            parent=record.parent,
            operators=record.operators,
            expected=record.expected,
            detected=detected,
            class_counts=dynamic,
            static_classes=static_codes,
            runs=campaign.n_runs,
            failures=len(campaign.failures()),
            statuses={k: int(v) for k, v in campaign.statuses().items()},
        )
        results.append(result)
        if on_variant is not None:
            on_variant(result)
    return results


def write_results(
    results: List[SweepResult], path: str, seeds: int
) -> None:
    header = {
        "schema": RESULTS_SCHEMA,
        "version": RESULTS_VERSION,
        "seeds": seeds,
        "variants": len(results),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for result in results:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")


def read_results(path: str) -> List[SweepResult]:
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise CorpusError(f"results file {path!r} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != RESULTS_SCHEMA:
        raise CorpusError(
            f"{path!r} is not a corpus results file (schema "
            f"{header.get('schema')!r}, expected {RESULTS_SCHEMA!r})"
        )
    return [SweepResult.from_dict(json.loads(line)) for line in lines[1:]]
