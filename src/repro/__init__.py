"""Reproduction of "A Classification of Concurrency Failures in Java
Components" (Brad Long & Paul Strooper, IPPS 2003).

Subpackages:

* :mod:`repro.petri` -- Petri-net engine and the Figure-1 concurrency model.
* :mod:`repro.vm` -- deterministic monitor virtual machine (the substrate
  standing in for JVM threads and ``synchronized``/``wait``/``notify``).
* :mod:`repro.analysis` -- static analysis building Concurrency Flow Graphs
  (CoFGs, Figure 3) from component source.
* :mod:`repro.classify` -- the Table-1 failure taxonomy, the HAZOP engine
  that derives it, and the trace classifier.
* :mod:`repro.detect` -- dynamic detectors (lockset races, lock-order and
  wait-for deadlocks, starvation, completion times, lost notifies).
* :mod:`repro.coverage` -- CoFG arc coverage measurement over VM traces.
* :mod:`repro.testing` -- deterministic test harness (ConAn-style clocked
  sequences), CoFG-driven sequence generation, schedule exploration,
  component mutation.
* :mod:`repro.components` -- example monitor components, correct and faulty.
* :mod:`repro.report` -- emitters regenerating the paper's tables/figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
