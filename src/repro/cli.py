"""Command-line interface.

::

    python -m repro table1                      # print Table 1
    python -m repro figure1 [--threads N] [--dot]
    python -m repro figure3
    python -m repro cofg repro.components:ProducerConsumer [--method receive] [--dot]
    python -m repro check repro.components.faulty:UnsyncCounter
    python -m repro run script.cts [--save-trace run.jsonl] [--verbose]
    python -m repro run scenario.toml
    python -m repro analyze run.jsonl
    python -m repro contention run.jsonl
    python -m repro explore pc-bug --mode random --seeds 0:100 [--detect] [--metrics]
    python -m repro campaign pc-bug --workers 4 --budget 400 \\
        --journal camp.jsonl [--resume] [--detect --trace-mode none] \\
        [--metrics-out metrics.jsonl] [--serve 127.0.0.1:8000] [--dash] \\
        [--progress-json]
    python -m repro dash --url http://127.0.0.1:8000
    python -m repro trace run.jsonl [--out run.chrome.json]
    python -m repro profile pc-bug --runs 50
    python -m repro registry list [components|workloads|schedulers|detectors|faults]
    python -m repro corpus generate --components bounded_buffer,readers_writers
    python -m repro corpus sweep --manifest corpus.jsonl --out sweep/ [--resume]
    python -m repro corpus report --results sweep/results.jsonl [--json]

The ``run`` command executes a ConAn-style test script (see
:mod:`repro.testing.script` for the format) — or, given a ``.toml``
path, a declarative scenario file (see :func:`repro.run.load_scenario`
for the schema).  ``analyze`` re-runs every trace-based detector over a
saved run.  ``explore`` drives the single-process schedule explorer
over a named workload or any ``module:function`` program factory;
``campaign`` shards the same schedule space across a multiprocessing
pool with journaling and resume (see :mod:`repro.engine`).  Both parse
their flags into one :class:`repro.run.RunConfig` and assemble runs
through :class:`repro.run.RunExecutor` — the CLI itself never touches
detectors or sinks directly.

``campaign --serve`` exposes live telemetry over an embedded HTTP
endpoint while the campaign runs, ``dash`` renders a terminal dashboard
against that endpoint, and ``trace`` converts a saved run trace into
Chrome trace-event JSON loadable in Perfetto (see
:mod:`repro.obs.live`).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Type

from repro.vm.api import MonitorComponent

__all__ = ["main", "build_parser"]


def _resolve_component(spec: str) -> Type[MonitorComponent]:
    """Resolve ``module:ClassName`` (or ``module.ClassName``) to a class."""
    if ":" in spec:
        module_name, class_name = spec.split(":", 1)
    elif "." in spec:
        module_name, class_name = spec.rsplit(".", 1)
    else:
        raise SystemExit(f"error: component spec {spec!r} must be module:Class")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SystemExit(f"error: cannot import {module_name!r}: {exc}")
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise SystemExit(f"error: {module_name!r} has no class {class_name!r}")
    return cls


def _resolve_faults(spec: Optional[str]):
    """Resolve a ``--faults`` value: a registered plan name (coerced later
    by the run layer, with did-you-mean on typos) or a path to a
    fault-plan JSON file."""
    if spec is None:
        return None
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        from repro.faults.plan import FaultPlan

        try:
            return FaultPlan.from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: --faults {spec!r}: {exc}")
    return spec


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.report import render_table1

    print(render_table1(width=args.width))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    if args.dot:
        from repro.petri import build_concurrency_net, net_to_dot

        net, m0 = build_concurrency_net(args.threads)
        print(net_to_dot(net, m0))
    else:
        from repro.report import render_figure1

        print(render_figure1(args.threads))
    return 0


def _cmd_figure3(_args: argparse.Namespace) -> int:
    from repro.report import render_figure3

    print(render_figure3())
    return 0


def _cmd_cofg(args: argparse.Namespace) -> int:
    from repro.analysis import build_all_cofgs, build_cofg, cofg_to_dot

    cls = _resolve_component(args.component)
    if args.method:
        cofgs = {args.method: build_cofg(cls, args.method)}
    else:
        cofgs = build_all_cofgs(cls)
        if not cofgs:
            print(f"{cls.__name__} declares no @synchronized/@unsynchronized methods")
            return 1
    for name, cofg in cofgs.items():
        if args.dot:
            print(cofg_to_dot(cofg))
        else:
            print(cofg.describe())
        print()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import check_component

    cls = _resolve_component(args.component)
    findings = check_component(cls)
    if not findings:
        print(f"{cls.__name__}: no static findings")
        return 0
    for finding in findings:
        print(finding)
    return 2


def _cmd_run(args: argparse.Namespace) -> int:
    if args.script.endswith(".toml"):
        return _cmd_run_scenario(args)
    from repro.testing.script import parse_script
    from repro.vm.monitor import SelectionPolicy
    from repro.vm.scheduler import FifoScheduler, RandomScheduler

    text = Path(args.script).read_text()
    parsed = parse_script(text, name=Path(args.script).stem)

    scheduler = (
        RandomScheduler(args.seed) if args.seed is not None else FifoScheduler()
    )
    outcome = parsed.run(
        scheduler=scheduler,
        lock_policy=SelectionPolicy(args.lock_policy),
        notify_policy=SelectionPolicy(args.notify_policy),
    )
    print(outcome.describe())
    if args.verbose:
        print()
        print(outcome.coverage.describe())
        print()
        print(outcome.report.describe())
    if args.save_trace:
        from repro.vm.serialize import save_trace

        save_trace(
            outcome.result.trace,
            args.save_trace,
            schedule=outcome.result.schedule_log,
        )
        print(f"\ntrace saved to {args.save_trace}")
    return 0 if outcome.passed else 1


def _cmd_run_scenario(args: argparse.Namespace) -> int:
    """Execute a declarative ``scenario.toml``: a ``[run]`` table plus at
    most one of ``[explore]`` / ``[campaign]``."""
    from repro.run import RunConfigError, load_scenario

    try:
        scenario = load_scenario(args.script)
    except (OSError, RunConfigError) as exc:
        raise SystemExit(f"error: {exc}")
    config = scenario.run

    if scenario.campaign is not None:
        import sys as _sys

        from repro.engine import (
            CampaignError,
            CampaignSpec,
            ProgressTracker,
            run_campaign,
        )
        from repro.engine.journal import JournalError

        params = dict(scenario.campaign)
        resume = bool(params.pop("resume", False))
        quiet = bool(params.pop("quiet", False))
        journal = params.pop("journal", None)
        if journal is not None:
            params["journal_path"] = str(journal)
        spec = CampaignSpec.from_run_config(config, **params)
        progress = ProgressTracker(
            total_runs=spec.budget,
            stream=None if quiet else _sys.stderr,
        )
        try:
            result = run_campaign(spec, resume=resume, progress=progress)
        except (CampaignError, JournalError) as exc:
            raise SystemExit(f"error: {exc}")
        print(result.describe())
        if spec.metrics_out:
            print(f"metrics written to {spec.metrics_out}")
        if spec.metrics_prom:
            print(f"prometheus metrics written to {spec.metrics_prom}")
        return 2 if result.failures() else 0

    from repro.run.executor import RunExecutor

    try:
        executor = RunExecutor(config)
    except RunConfigError as exc:
        raise SystemExit(f"error: {exc}")

    if scenario.explore is not None:
        params = dict(scenario.explore)
        runs = int(params.get("runs", 200))
        stop = bool(params.get("stop_on_failure", False))
        try:
            if config.scheduler == "systematic":
                result = executor.explore(
                    "systematic", max_runs=runs, stop_on_failure=stop
                )
            else:
                seeds_spec = params.get("seeds")
                seeds = (
                    _parse_seeds(str(seeds_spec))
                    if seeds_spec is not None
                    else list(range(runs))
                )
                result = executor.explore(seeds=seeds, stop_on_failure=stop)
        except RunConfigError as exc:
            raise SystemExit(f"error: {exc}")
        print(result.describe())
        lo, hi = result.failure_rate_interval()
        print(
            f"  failure rate: {result.failure_rate():.1%} "
            f"(95% CI [{lo:.1%}, {hi:.1%}])"
        )
        return 0 if not result.failures() else 2

    # no driver table: execute exactly one run as configured
    try:
        result = executor.execute()
    except RunConfigError as exc:
        raise SystemExit(f"error: {exc}")
    print(f"{config.workload}: {result.status.value} after {result.steps} steps")
    if result.stuck_threads:
        print(f"  stuck threads: {', '.join(result.stuck_threads)}")
    if executor.pipeline is not None:
        print()
        print(executor.pipeline.report(result).describe())
    return 0 if result.ok else 2


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.detect import (
        analyze_starvation,
        detect_lock_cycles,
        detect_races,
        find_deadlock_cycle,
    )
    from repro.vm.serialize import load_trace

    trace = load_trace(args.trace)
    print(f"loaded {len(trace)} events, threads: {', '.join(trace.threads())}")
    clean = True
    for race in detect_races(trace):
        print("race:", race)
        clean = False
    for cycle in detect_lock_cycles(trace):
        print("lock-order hazard:", cycle)
        clean = False
    deadlock = find_deadlock_cycle(trace)
    if deadlock:
        print("deadlock cycle:", " -> ".join(deadlock))
        clean = False
    for starved in analyze_starvation(trace):
        print("starvation:", starved)
        clean = False
    if clean:
        print("no findings")
    return 0 if clean else 2


def _cmd_contention(args: argparse.Namespace) -> int:
    from repro.detect.contention import profile_contention
    from repro.vm.serialize import load_trace

    report = profile_contention(load_trace(args.trace))
    print(report.table())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import component_metrics

    cls = _resolve_component(args.component)
    print(component_metrics(cls).describe())
    return 0


def _parse_alphabet(specs: List[str]):
    """Turn ``method`` / ``method:arg1,arg2`` specs into CallTemplates."""
    import ast as ast_module

    from repro.testing.generator import CallTemplate

    templates = []
    for spec in specs:
        if ":" in spec:
            method, args_text = spec.split(":", 1)
            args = tuple(ast_module.literal_eval(f"({args_text},)"))
            templates.append(
                CallTemplate(method, lambda i, a=args: a, label=spec)
            )
        else:
            templates.append(CallTemplate(spec))
    return templates


def _cmd_method(args: argparse.Namespace) -> int:
    from repro.method import systematic_test

    cls = _resolve_component(args.component)
    report = systematic_test(
        cls,
        alphabet=_parse_alphabet(args.call),
        max_generated_length=args.max_length,
    )
    print(report.describe())
    if args.save_suite:
        report.suite.save(args.save_suite)
        print(f"\ngolden suite saved to {args.save_suite}")
    return 0 if report.passed else 1


def _cmd_suite_run(args: argparse.Namespace) -> int:
    from repro.testing.regression import RegressionSuite

    cls = _resolve_component(args.component)
    suite = RegressionSuite.load(args.suite)
    report = suite.run(cls)
    print(report.describe())
    return 0 if report.passed else 1


def _parse_seeds(text: str) -> List[int]:
    """Parse a seed spec: ``7``, ``0:100`` (half-open), or ``1,5,9``."""
    from repro.run import RunConfigError, parse_seed_spec

    try:
        return list(parse_seed_spec(text))
    except RunConfigError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.run import RunConfig, RunConfigError
    from repro.run.executor import RunExecutor

    want_metrics = args.metrics or bool(args.metrics_out)
    decisions: List[int] = []
    if args.mode == "replay":
        if args.decisions is None:
            raise SystemExit("error: --mode replay requires --decisions")
        try:
            decisions = [int(d) for d in args.decisions.split(",") if d.strip()]
        except ValueError:
            raise SystemExit(
                f"error: --decisions must be comma-separated integers, "
                f"got {args.decisions!r}"
            )

    try:
        config = RunConfig(
            workload=args.factory,
            component=args.component,
            scheduler=args.mode,
            prefix=tuple(decisions),
            detect=args.detect,
            metrics=want_metrics,
            timeout=0.0,
            max_depth=args.max_depth,
            branch=args.branch,
            pct_depth=args.pct_depth,
            pct_expected_steps=args.pct_steps,
            spurious_rate=args.spurious_rate,
            faults=_resolve_faults(args.faults),
        )
        executor = RunExecutor(config)
    except RunConfigError as exc:
        raise SystemExit(f"error: {exc}")

    metrics_registry = None
    if want_metrics:
        from repro.obs import MetricsRegistry

        metrics_registry = MetricsRegistry()

    def _finish_metrics() -> None:
        if metrics_registry is None:
            return
        events = metrics_registry.get("vm_events_total")
        total = int(events.total) if events is not None else 0
        print(f"  metrics: {total} kernel events")
        contended = metrics_registry.get("vm_monitor_contended_ticks_total")
        if contended is not None:
            for name, ticks in contended.top(3, label="monitor"):
                print(f"    contended monitor {name}: {int(ticks)} ticks")
        if args.metrics_out:
            from repro.obs import write_metrics_jsonl

            write_metrics_jsonl(
                metrics_registry,
                args.metrics_out,
                meta={"factory": args.factory, "mode": args.mode},
            )
            print(f"  metrics written to {args.metrics_out}")

    if args.mode == "replay":
        from repro.vm.scheduler import (
            ChoiceExhaustedError,
            FifoScheduler,
            RecordingScheduler,
            ReplayScheduler,
        )

        recorder = RecordingScheduler(
            ReplayScheduler(decisions, fallback=FifoScheduler())
        )
        try:
            result = executor.execute(recorder)
        except ChoiceExhaustedError as exc:
            raise SystemExit(
                f"error: decision sequence does not fit this program: {exc}"
            )
        print(f"replayed {len(decisions)} decisions: {result.status.value}")
        if result.stuck_threads:
            print(f"  stuck threads: {', '.join(result.stuck_threads)}")
        if result.crashed:
            for name, exc in result.crashed.items():
                print(f"  crashed {name}: {exc!r}")
        if executor.pipeline is not None:
            print()
            print(executor.pipeline.report(result).describe())
        if executor.sink is not None:
            metrics_registry.merge(executor.sink.collect())
            _finish_metrics()
        if args.save_trace:
            from repro.vm.serialize import save_trace

            save_trace(result.trace, args.save_trace, schedule=result.schedule_log)
            print(f"trace saved to {args.save_trace}")
        if args.chrome_trace:
            from repro.obs.live import write_chrome_trace

            spans = ()
            if executor.sink is not None and executor.sink.tracer is not None:
                spans = list(executor.sink.tracer.finished)
            write_chrome_trace(
                result.trace,
                args.chrome_trace,
                spans=spans,
                meta={
                    "factory": args.factory,
                    "status": result.status.value,
                    "decisions": len(decisions),
                },
            )
            print(
                f"chrome trace written to {args.chrome_trace} "
                "(open in ui.perfetto.dev)"
            )
        return 0 if result.ok else 2

    for flag, value in (
        ("--save-trace", args.save_trace),
        ("--chrome-trace", args.chrome_trace),
    ):
        if value:
            print(
                f"warning: {flag} only applies to --mode replay; ignoring "
                "(replay a failure's decisions or seed to capture its trace)",
                file=sys.stderr,
            )

    from collections import Counter

    class_counts: Counter = Counter()

    def on_detect(run) -> None:
        if executor.sink is not None:
            metrics_registry.merge(executor.sink.collect())
        if executor.pipeline is None:
            return
        for code in executor.pipeline.summary(run.result).classes:
            class_counts[code] += 1

    if args.mode == "systematic":
        result = executor.explore(
            "systematic",
            max_runs=args.runs,
            stop_on_failure=args.stop_on_failure,
            on_run=on_detect,
        )
    else:
        seeds = _parse_seeds(args.seeds) if args.seeds else list(range(args.runs))
        result = executor.explore(
            args.mode,
            seeds=seeds,
            stop_on_failure=args.stop_on_failure,
            on_run=on_detect,
        )
    print(result.describe())
    if args.detect:
        class_bits = ", ".join(
            f"{code}: {count}" for code, count in sorted(class_counts.items())
        )
        print(f"  failure classes: {class_bits or 'none detected'}")
    if want_metrics:
        _finish_metrics()
    lo, hi = result.failure_rate_interval()
    print(f"  failure rate: {result.failure_rate():.1%} (95% CI [{lo:.1%}, {hi:.1%}])")
    for run in result.failures():
        if run.seed is not None:
            print(f"  failure at seed {run.seed}: {run.result.status.value}")
        else:
            decisions = ",".join(str(d) for d in run.decisions)
            print(
                f"  failure ({run.result.status.value}) — replay with "
                f"--mode replay --decisions {decisions}"
            )
        break  # first failure is enough for the console
    return 0 if not result.failures() else 2


def _cmd_campaign(args: argparse.Namespace) -> int:
    import sys as _sys

    from repro.engine import CampaignError, CampaignSpec, ProgressTracker, run_campaign
    from repro.engine.journal import JournalError

    try:
        spec = CampaignSpec(
            factory=args.factory,
            component=args.component,
            mode=args.mode,
            budget=args.budget,
            workers=args.workers,
            shard_size=args.shard_size,
            seed_start=args.seed_start,
            goal=args.goal,
            coverage=args.coverage,
            detect=args.detect,
            trace_mode=args.trace_mode,
            run_timeout=args.timeout,
            max_retries=args.retries,
            max_depth=args.max_depth,
            branch=args.branch,
            pct_depth=args.pct_depth,
            pct_expected_steps=args.pct_steps,
            journal_path=args.journal,
            metrics=args.metrics,  # --metrics-out/--metrics-prom imply it
            metrics_out=args.metrics_out,
            metrics_prom=args.metrics_prom,
            spurious_rate=args.spurious_rate,
            faults=_resolve_faults(args.faults),
        )
    except CampaignError as exc:
        raise SystemExit(f"error: {exc}")
    # --progress-json is an explicit request for machine-readable
    # heartbeats, so it wins over --quiet and --dash; the plain text
    # heartbeat stays off under either (--dash owns the terminal).
    heartbeat = args.progress_json or not (args.quiet or args.dash)
    progress = ProgressTracker(
        total_runs=args.budget,
        stream=_sys.stderr if heartbeat else None,
        json_mode=args.progress_json,
    )

    telemetry = None
    server = None
    dashboard = None
    if args.serve or args.dash:
        from repro.obs.live import (
            LiveAggregator,
            LocalDashboard,
            TelemetryServer,
            parse_serve_address,
        )

        telemetry = LiveAggregator(total_runs=args.budget)
        if args.serve:
            try:
                host, port = parse_serve_address(args.serve)
                server = TelemetryServer(telemetry, host, port).start()
            except (ValueError, OSError) as exc:
                raise SystemExit(f"error: --serve {args.serve}: {exc}")
            print(
                f"live telemetry at {server.url} (/status /metrics /events)",
                file=_sys.stderr,
            )
        if args.dash:
            dashboard = LocalDashboard(telemetry, _sys.stderr).start()
    try:
        result = run_campaign(
            spec, resume=args.resume, progress=progress, telemetry=telemetry
        )
    except (CampaignError, JournalError) as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if dashboard is not None:
            dashboard.stop()
        if server is not None:
            server.close()
    print(result.describe())
    if spec.metrics_out:
        print(f"metrics written to {spec.metrics_out}")
    if spec.metrics_prom:
        print(f"prometheus metrics written to {spec.metrics_prom}")
    return 2 if result.failures() else 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.live import run_dashboard

    try:
        return run_dashboard(
            args.url,
            stream=sys.stdout,
            interval=args.interval,
            clear=not args.no_clear,
            max_polls=args.polls,
        )
    except BrokenPipeError:
        return 0  # downstream pager/head closed the pipe; not an error


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs.live import to_chrome_trace
    from repro.vm.serialize import load_trace

    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error: cannot load trace {args.trace!r}: {exc}")
    out = Path(args.out) if args.out else Path(args.trace).with_suffix(".chrome.json")
    document = to_chrome_trace(trace, meta={"source": str(args.trace)})
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(_json.dumps(document) + "\n")
    print(
        f"chrome trace written to {out} "
        f"({len(document['traceEvents'])} events; open in ui.perfetto.dev)"
    )
    return 0


def _cmd_registry_list(args: argparse.Namespace) -> int:
    from repro.run.registry import (
        COMPONENTS,
        DETECTORS,
        FAULTS,
        SCHEDULERS,
        WORKLOADS,
        load_builtins,
    )

    load_builtins()
    registries = {
        "components": COMPONENTS,
        "workloads": WORKLOADS,
        "schedulers": SCHEDULERS,
        "detectors": DETECTORS,
        "faults": FAULTS,
    }
    kinds = [args.kind] if args.kind else list(registries)
    for kind in kinds:
        names = registries[kind].names()
        if args.kind:
            for name in names:
                print(name)
        else:
            print(f"{kind} ({len(names)}):")
            for name in names:
                print(f"  {name}")
    return 0


def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusError, generate_corpus, write_manifest

    components = [c.strip() for c in args.components.split(",") if c.strip()]
    if not components:
        raise SystemExit("error: --components needs at least one name")
    try:
        records = generate_corpus(components, pair_cap=args.pair_cap)
    except CorpusError as exc:
        raise SystemExit(f"error: {exc}")
    write_manifest(records, args.out)
    faulty = sum(1 for r in records if not r.is_control)
    print(
        f"wrote {len(records)} variants ({faulty} faulty, "
        f"{len(records) - faulty} controls) to {args.out}"
    )
    return 0


def _cmd_corpus_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.corpus import (
        CorpusError,
        SweepResult,
        build_report,
        load_corpus,
        read_manifest,
        sweep_corpus,
        write_results,
    )
    from repro.engine import CampaignError
    from repro.engine.journal import JournalError

    try:
        records = read_manifest(args.manifest)
        load_corpus(records)
    except (OSError, CorpusError) as exc:
        raise SystemExit(f"error: {exc}")

    def on_variant(result: SweepResult) -> None:
        if args.quiet:
            return
        mark = "." if result.is_control else ("+" if result.caught else "!")
        detected = ", ".join(result.detected) or "clean"
        print(f"  [{mark}] {result.variant_id}: {detected}", file=sys.stderr)

    try:
        results = sweep_corpus(
            records,
            args.out,
            seeds=args.seeds,
            resume=args.resume,
            timeout=args.timeout,
            on_variant=on_variant,
        )
    except (CorpusError, CampaignError, JournalError) as exc:
        raise SystemExit(f"error: {exc}")
    results_path = os.path.join(args.out, "results.jsonl")
    write_results(results, results_path, seeds=args.seeds)
    print(f"results written to {results_path}")
    print()
    print(build_report(results).describe())
    return 0


def _cmd_corpus_report(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusError, build_report, read_results

    try:
        report = build_report(read_results(args.results))
    except (OSError, CorpusError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.engine.workloads import resolve_factory
    from repro.obs import profile_workload

    try:
        factory = resolve_factory(args.factory)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    report = profile_workload(
        factory,
        workload=args.factory,
        runs=args.runs,
        seed_start=args.seed_start,
        detect=not args.no_detect,
    )
    print(report.describe())
    if args.metrics_out:
        from repro.obs import write_metrics_jsonl

        write_metrics_jsonl(
            report.registry,
            args.metrics_out,
            meta={"workload": args.factory, "runs": args.runs},
        )
        print(f"\nmetrics written to {args.metrics_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Classification of Concurrency Failures in "
            "Java Components' (Long & Strooper, IPPS 2003)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="print the Table-1 classification")
    p_table1.add_argument("--width", type=int, default=24, help="column wrap width")
    p_table1.set_defaults(func=_cmd_table1)

    p_fig1 = sub.add_parser("figure1", help="print the Figure-1 Petri-net model")
    p_fig1.add_argument("--threads", type=int, default=1)
    p_fig1.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_fig1.set_defaults(func=_cmd_figure1)

    p_fig3 = sub.add_parser("figure3", help="print the Figure-3 CoFG tables")
    p_fig3.set_defaults(func=_cmd_figure3)

    p_cofg = sub.add_parser("cofg", help="build CoFGs for a component")
    p_cofg.add_argument("component", help="module:ClassName")
    p_cofg.add_argument("--method", help="single method (default: all)")
    p_cofg.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_cofg.set_defaults(func=_cmd_cofg)

    p_check = sub.add_parser(
        "check", help="run the FF-T1/EF-T1 static checks on a component"
    )
    p_check.add_argument("component", help="module:ClassName")
    p_check.set_defaults(func=_cmd_check)

    p_run = sub.add_parser(
        "run",
        help="execute a ConAn-style test script (.cts) or a declarative "
        "scenario file (.toml)",
    )
    p_run.add_argument("script", help="path to the script or scenario file")
    p_run.add_argument("--seed", type=int, help="random scheduler seed")
    from repro.vm.monitor import SelectionPolicy

    policy_names = [p.value for p in SelectionPolicy]
    p_run.add_argument("--lock-policy", default="fifo", choices=policy_names)
    p_run.add_argument("--notify-policy", default="fifo", choices=policy_names)
    p_run.add_argument("--save-trace", help="write the trace to this JSONL path")
    p_run.add_argument("--verbose", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_analyze = sub.add_parser("analyze", help="run detectors over a saved trace")
    p_analyze.add_argument("trace", help="path to a .jsonl trace")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_cont = sub.add_parser(
        "contention", help="monitor-contention profile of a saved trace"
    )
    p_cont.add_argument("trace", help="path to a .jsonl trace")
    p_cont.set_defaults(func=_cmd_contention)

    p_metrics = sub.add_parser(
        "metrics", help="CoFG complexity metrics of a component"
    )
    p_metrics.add_argument("component", help="module:ClassName")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_method = sub.add_parser(
        "method",
        help="run the paper's full method: CoFGs, static checks, "
        "generated covering sequence, golden oracle",
    )
    p_method.add_argument("component", help="module:ClassName")
    p_method.add_argument(
        "--call",
        action="append",
        default=[],
        required=True,
        help="alphabet entry: 'method' or 'method:arg1,arg2' (repeatable)",
    )
    p_method.add_argument("--max-length", type=int, default=16)
    p_method.add_argument(
        "--save-suite", help="write the golden suite JSON to this path"
    )
    p_method.set_defaults(func=_cmd_method)

    p_suite = sub.add_parser(
        "suite-run", help="run a saved golden suite against a component"
    )
    p_suite.add_argument("suite", help="path to a suite .json")
    p_suite.add_argument("component", help="module:ClassName to test")
    p_suite.set_defaults(func=_cmd_suite_run)

    p_explore = sub.add_parser(
        "explore",
        help="single-process schedule exploration of a workload "
        "(systematic DFS, random, PCT, or exact replay)",
    )
    p_explore.add_argument(
        "factory", help="workload name (e.g. pc-bug) or module:function factory"
    )
    p_explore.add_argument(
        "--component",
        help="component name to instantiate a workload template with "
        "(e.g. 'pc' + --component BoundedBuffer)",
    )
    p_explore.add_argument(
        "--mode",
        default="systematic",
        choices=["systematic", "random", "pct", "replay"],
    )
    p_explore.add_argument(
        "--runs", type=int, default=200, help="run budget (seed count if no --seeds)"
    )
    p_explore.add_argument(
        "--seeds", help="seed spec for random/pct: '7', '0:100', or '1,5,9'"
    )
    p_explore.add_argument(
        "--detect",
        action="store_true",
        help="stream every run through the online detector pipeline "
        "and report per-failure-class counts",
    )
    p_explore.add_argument("--stop-on-failure", action="store_true")
    p_explore.add_argument("--max-depth", type=int, default=400)
    p_explore.add_argument("--branch", default="shallow", choices=["shallow", "deep"])
    p_explore.add_argument("--pct-depth", type=int, default=3)
    p_explore.add_argument("--pct-steps", type=int, default=200)
    p_explore.add_argument(
        "--metrics",
        action="store_true",
        help="attach the instrumentation sink to every run and report "
        "merged contention metrics",
    )
    p_explore.add_argument(
        "--metrics-out",
        help="write the merged metrics registry to this JSONL path "
        "(implies --metrics)",
    )
    p_explore.add_argument(
        "--spurious-rate",
        type=float,
        default=0.0,
        help="per-step probability that one waiting thread wakes "
        "spuriously (drawn from the run's seeded RNG, so runs stay "
        "reproducible)",
    )
    p_explore.add_argument(
        "--faults",
        help="deterministic fault plan: a registered plan name (see "
        "'registry list faults') or a path to a fault-plan JSON file",
    )
    p_explore.add_argument(
        "--decisions", help="comma-separated decision indices for --mode replay"
    )
    p_explore.add_argument(
        "--save-trace", help="(replay mode) write the trace to this JSONL path"
    )
    p_explore.add_argument(
        "--chrome-trace",
        help="(replay mode) write a Perfetto-loadable Chrome trace-event "
        "JSON of the replayed run to this path (open in ui.perfetto.dev)",
    )
    p_explore.set_defaults(func=_cmd_explore)

    p_campaign = sub.add_parser(
        "campaign",
        help="parallel, resumable schedule-exploration campaign "
        "(shards across a multiprocessing pool; see repro.engine)",
    )
    p_campaign.add_argument(
        "factory", help="workload name (e.g. pc-bug) or module:function factory"
    )
    p_campaign.add_argument(
        "--component",
        help="component name to instantiate a workload template with "
        "(e.g. 'pc' + --component BoundedBuffer)",
    )
    p_campaign.add_argument(
        "--mode", default="random", choices=["random", "pct", "systematic"]
    )
    p_campaign.add_argument("--budget", type=int, default=200, help="total runs")
    p_campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes (0 = inline)"
    )
    p_campaign.add_argument("--shard-size", type=int, default=25)
    p_campaign.add_argument("--seed-start", type=int, default=0)
    p_campaign.add_argument(
        "--goal",
        default="budget",
        choices=["budget", "first-failure", "first-deadlock", "coverage"],
        help="early-stop condition",
    )
    p_campaign.add_argument(
        "--coverage", help="module:Class whose CoFG arc coverage to track"
    )
    p_campaign.add_argument(
        "--detect",
        action="store_true",
        help="run the streaming detector pipeline on every run and "
        "aggregate per-failure-class counts",
    )
    p_campaign.add_argument(
        "--trace-mode",
        default="full",
        choices=["full", "none"],
        help="kernel trace retention; 'none' keeps memory O(detector "
        "state) and requires --detect",
    )
    p_campaign.add_argument(
        "--timeout", type=float, default=10.0, help="per-run wall-clock seconds"
    )
    p_campaign.add_argument(
        "--retries", type=int, default=2, help="max requeues of a crashed shard"
    )
    p_campaign.add_argument("--max-depth", type=int, default=400)
    p_campaign.add_argument("--branch", default="shallow", choices=["shallow", "deep"])
    p_campaign.add_argument("--pct-depth", type=int, default=3)
    p_campaign.add_argument("--pct-steps", type=int, default=200)
    p_campaign.add_argument(
        "--spurious-rate",
        type=float,
        default=0.0,
        help="per-step probability that one waiting thread wakes "
        "spuriously (drawn from each run's seeded RNG; folded into the "
        "journal fingerprint)",
    )
    p_campaign.add_argument(
        "--faults",
        help="deterministic fault plan: a registered plan name (see "
        "'registry list faults') or a path to a fault-plan JSON file",
    )
    p_campaign.add_argument("--journal", help="JSONL checkpoint path")
    p_campaign.add_argument(
        "--metrics",
        action="store_true",
        help="attach the instrumentation sink to every run and merge "
        "per-run metrics into a campaign registry",
    )
    p_campaign.add_argument(
        "--metrics-out",
        help="write the merged campaign metrics to this JSONL path "
        "(implies --metrics)",
    )
    p_campaign.add_argument(
        "--metrics-prom",
        help="write the merged campaign metrics in Prometheus text "
        "format to this path (implies --metrics)",
    )
    p_campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already journaled (requires --journal)",
    )
    p_campaign.add_argument(
        "--quiet", action="store_true", help="suppress live progress on stderr"
    )
    p_campaign.add_argument(
        "--progress-json",
        action="store_true",
        help="emit machine-readable JSONL heartbeats on stderr instead of "
        "the human progress line",
    )
    p_campaign.add_argument(
        "--serve",
        metavar="HOST:PORT",
        help="expose live campaign telemetry over HTTP while the campaign "
        "runs: GET /status (JSON), /metrics (Prometheus), /events (SSE); "
        "port 0 picks a free port",
    )
    p_campaign.add_argument(
        "--dash",
        action="store_true",
        help="render a live terminal dashboard on stderr (suppresses the "
        "one-line heartbeat)",
    )
    p_campaign.set_defaults(func=_cmd_campaign)

    p_dash = sub.add_parser(
        "dash",
        help="terminal dashboard for a campaign served with "
        "'campaign --serve' (polls its /status endpoint)",
    )
    p_dash.add_argument(
        "--url",
        required=True,
        help="base URL of the telemetry server (e.g. http://127.0.0.1:8000)",
    )
    p_dash.add_argument(
        "--interval", type=float, default=1.0, help="poll interval in seconds"
    )
    p_dash.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen between polls",
    )
    p_dash.add_argument(
        "--polls",
        type=int,
        default=None,
        help="stop after this many polls (default: until the campaign ends)",
    )
    p_dash.set_defaults(func=_cmd_dash)

    p_trace = sub.add_parser(
        "trace",
        help="convert a saved run trace (JSONL, from --save-trace) to "
        "Chrome trace-event JSON for Perfetto",
    )
    p_trace.add_argument("trace", help="trace JSONL path (from --save-trace)")
    p_trace.add_argument(
        "--out",
        help="output path (default: <trace>.chrome.json alongside the input)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_registry = sub.add_parser(
        "registry", help="inspect the run-assembly registries"
    )
    registry_sub = p_registry.add_subparsers(dest="registry_command", required=True)
    p_reg_list = registry_sub.add_parser(
        "list",
        help="list registered names (all five registries, or one kind)",
    )
    p_reg_list.add_argument(
        "kind",
        nargs="?",
        choices=["components", "workloads", "schedulers", "detectors", "faults"],
        help="restrict to one registry (bare names, one per line)",
    )
    p_reg_list.set_defaults(func=_cmd_registry_list)

    p_corpus = sub.add_parser(
        "corpus",
        help="mutation-based component corpus: generate labeled variants, "
        "sweep them through detection campaigns, report per-class rates",
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)

    p_cgen = corpus_sub.add_parser(
        "generate", help="generate a labeled variant corpus manifest"
    )
    p_cgen.add_argument(
        "--components",
        required=True,
        help="comma-separated component names (e.g. bounded_buffer,readers_writers)",
    )
    p_cgen.add_argument(
        "--out", default="corpus.jsonl", help="manifest path (JSONL)"
    )
    p_cgen.add_argument(
        "--pair-cap",
        type=int,
        default=20,
        help="max second-order (paired-operator) variants per component",
    )
    p_cgen.set_defaults(func=_cmd_corpus_generate)

    p_csweep = corpus_sub.add_parser(
        "sweep",
        help="run one detection campaign per manifest variant "
        "(resumable; journals live under --out)",
    )
    p_csweep.add_argument("--manifest", required=True, help="corpus manifest path")
    p_csweep.add_argument(
        "--out", required=True, help="sweep directory (journals + results.jsonl)"
    )
    p_csweep.add_argument(
        "--seeds", type=int, default=40, help="random schedules per variant"
    )
    p_csweep.add_argument(
        "--timeout", type=float, default=10.0, help="per-run wall-clock seconds"
    )
    p_csweep.add_argument(
        "--resume",
        action="store_true",
        help="skip variants/shards already journaled under --out",
    )
    p_csweep.add_argument(
        "--quiet", action="store_true", help="suppress per-variant progress"
    )
    p_csweep.set_defaults(func=_cmd_corpus_sweep)

    p_creport = corpus_sub.add_parser(
        "report",
        help="per-failure-class precision/recall and confusion table "
        "from sweep results",
    )
    p_creport.add_argument(
        "--results", required=True, help="results.jsonl from a sweep"
    )
    p_creport.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_creport.set_defaults(func=_cmd_corpus_report)

    p_profile = sub.add_parser(
        "profile",
        help="profile a workload under random schedules: hot monitors, "
        "starved threads, detector time breakdown",
    )
    p_profile.add_argument(
        "factory", help="workload name (e.g. pc-bug) or module:function factory"
    )
    p_profile.add_argument(
        "--runs", type=int, default=20, help="random schedules to profile"
    )
    p_profile.add_argument("--seed-start", type=int, default=0)
    p_profile.add_argument(
        "--no-detect",
        action="store_true",
        help="skip the detector pipeline (pure VM profile)",
    )
    p_profile.add_argument(
        "--metrics-out", help="write the merged registry to this JSONL path"
    )
    p_profile.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
