"""The paper's failure classification (Section 5, Table 1).

Public API::

    from repro.classify import (
        FailureClass, FailureMode, TABLE1_ENTRIES,   # the taxonomy
        hazop_skeleton, derive_table1,               # the HAZOP engine
        Symptom, symptoms_from_run, classify_symptoms,  # diagnosis
    )
"""

from .hazop import AnalysisRow, DeviationItem, derive_table1, hazop_skeleton
from .primitives import (
    BARRIER_ENTRIES,
    PRIMITIVE_ENTRIES,
    RWLOCK_ENTRIES,
    SEMAPHORE_ENTRIES,
    build_barrier_net,
    build_rwlock_net,
    build_semaphore_net,
    derive_primitive_tables,
)
from .symptoms import (
    CANDIDATES,
    ClassificationReport,
    ObservedFailure,
    Symptom,
    SymptomTracker,
    classify_symptoms,
    symptoms_from_run,
)
from .taxonomy import (
    ENVIRONMENT_ENTRIES,
    TABLE1_ENTRIES,
    ClassificationEntry,
    DetectionTechnique,
    FailureClass,
    FailureMode,
    entries_for,
    entry_count,
)

__all__ = [
    "AnalysisRow",
    "BARRIER_ENTRIES",
    "CANDIDATES",
    "ENVIRONMENT_ENTRIES",
    "PRIMITIVE_ENTRIES",
    "RWLOCK_ENTRIES",
    "SEMAPHORE_ENTRIES",
    "ClassificationEntry",
    "ClassificationReport",
    "DetectionTechnique",
    "DeviationItem",
    "FailureClass",
    "FailureMode",
    "ObservedFailure",
    "Symptom",
    "SymptomTracker",
    "TABLE1_ENTRIES",
    "build_barrier_net",
    "build_rwlock_net",
    "build_semaphore_net",
    "classify_symptoms",
    "derive_primitive_tables",
    "derive_table1",
    "entries_for",
    "entry_count",
    "hazop_skeleton",
    "symptoms_from_run",
]
