"""Table-1-style classifications for the first-class VM primitives.

The paper derives its Table 1 by applying two HAZOP guide words —
*failure to fire* and *erroneous firing* — to every transition of the
Figure-1 monitor net.  This module repeats that derivation for the three
primitives the VM promotes alongside the monitor: the counting semaphore
(transitions ``S1..S3``), the read-write lock (``R1..R4``), and the
cyclic barrier (``B1..B2``).  Each primitive gets

* a small Petri-net model in the style of Figure 1 (one acquirer drawn,
  shared pool/lock/party places), built with the same
  :class:`~repro.petri.builder.NetBuilder` the monitor model uses, and
* a curated entry table in the Table-1 row format, joined against the
  net and completeness-checked by the same
  :func:`~repro.classify.hazop.derive_table1` engine.

``EF-S2``, ``EF-R2`` and ``EF-B2`` are marked not applicable for the
same reason the paper marks ``EF-T2``: the granting/tripping transition
is fired by the VM, which is trusted to hand out permits, admit modes,
and trip barriers correctly — component code cannot erroneously fire it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.petri import Marking, NetBuilder, PetriNet

from .hazop import AnalysisRow, derive_table1
from .taxonomy import (
    ClassificationEntry,
    DetectionTechnique,
    FailureClass,
)

__all__ = [
    "SEMAPHORE_ENTRIES",
    "RWLOCK_ENTRIES",
    "BARRIER_ENTRIES",
    "PRIMITIVE_ENTRIES",
    "build_semaphore_net",
    "build_rwlock_net",
    "build_barrier_net",
    "derive_primitive_tables",
]


def build_semaphore_net(permits: int = 2) -> Tuple[PetriNet, Marking]:
    """Figure-1-style net of one semaphore acquirer and a permit pool.

    Places ``A`` (outside), ``B`` (requesting), ``C`` (holding) mirror
    the monitor model; ``P`` is the shared permit pool (``permits``
    tokens), the semaphore analogue of the lock place ``E``.
    """
    builder = NetBuilder("semaphore")
    builder.place("A", "thread executing outside the guarded region", tokens=1)
    builder.place("B", "thread requesting permits")
    builder.place("C", "thread holding permits")
    builder.place("P", "permits available in the pool", tokens=permits)
    builder.transition("S1", "requesting permits")
    builder.transition("S2", "granting permits")
    builder.transition("S3", "releasing permits")
    builder.flow("A", "S1", "B")
    builder.arc("B", "S2").arc("P", "S2").arc("S2", "C")
    builder.arc("C", "S3").arc("S3", "A").arc("S3", "P")
    return builder.build()


def build_rwlock_net() -> Tuple[PetriNet, Marking]:
    """Figure-1-style net of one rw-lock acquirer through the
    write-then-downgrade cycle.

    ``L`` is the free lock; ``R2`` grants the requested (write) mode,
    ``R4`` is the j.u.c downgrade (write holder takes read without ever
    unlocking), ``R3`` releases the remaining hold.  As with Figure 1's
    single-thread instance, the direct write release is the firing that
    simply skips ``R4``; the net draws the richer cycle so the downgrade
    transition exists to be analyzed.
    """
    builder = NetBuilder("rwlock")
    builder.place("A", "thread executing outside the lock", tokens=1)
    builder.place("B", "thread requesting the lock in a mode")
    builder.place("W", "thread holding the write lock")
    builder.place("Rd", "thread holding the read lock")
    builder.place("L", "lock available", tokens=1)
    builder.transition("R1", "requesting the lock in a mode")
    builder.transition("R2", "granting the requested mode")
    builder.transition("R3", "releasing the hold")
    builder.transition("R4", "downgrading write to read")
    builder.flow("A", "R1", "B")
    builder.arc("B", "R2").arc("L", "R2").arc("R2", "W")
    builder.flow("W", "R4", "Rd")
    builder.arc("Rd", "R3").arc("R3", "A").arc("R3", "L")
    return builder.build()


def build_barrier_net(parties: int = 2) -> Tuple[PetriNet, Marking]:
    """Figure-1-style net of a ``parties``-party cyclic barrier.

    Every party starts approaching (``A``); ``B1`` parks an arrival in
    the wait place ``W``; ``B2`` — the trip — consumes all ``parties``
    parked tokens at once and releases them past the barrier (``F``).
    """
    builder = NetBuilder("barrier")
    builder.place("A", "party approaching the barrier", tokens=parties)
    builder.place("W", "party parked at the barrier")
    builder.place("F", "party released past the barrier")
    builder.transition("B1", "party arrives and suspends")
    builder.transition("B2", "last party arrives, barrier trips")
    builder.flow("A", "B1", "W")
    builder.arc("W", "B2", weight=parties)
    builder.arc("B2", "F", weight=parties)
    return builder.build()


#: Curated semaphore rows (S1..S3 under both guide words).
SEMAPHORE_ENTRIES: List[ClassificationEntry] = [
    ClassificationEntry(
        failure_class=FailureClass.FF_S1,
        cause="Thread accesses the pooled resource without acquiring a permit",
        conditions="Two or more threads share a bounded resource",
        consequences=(
            "The pool bound is not enforced: more users than permits enter "
            "(interference on the pooled resource)"
        ),
        testing_notes=(
            "Static analysis / model checking (often combined with dynamic "
            "analysis)"
        ),
        techniques=(DetectionTechnique.STATIC_ANALYSIS,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_S1,
        cause="Program logic requests permits that are not needed",
        conditions="The thread does not use the pooled resource",
        consequences=(
            "Unnecessary throttling; if the thread holds other locks while "
            "queued, it may join a mixed-primitive deadlock cycle"
        ),
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_S2,
        cause="The requested permits are never granted",
        conditions=(
            "The pool is empty and no holder releases: a release was "
            "dropped (lost permit), or holders are themselves blocked"
        ),
        consequences=(
            "The thread is permanently suspended on the semaphore "
            "(symptom: lost-permit)"
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_S2,
        cause="Not applicable",
        conditions="",
        consequences="",
        testing_notes="",
        techniques=(DetectionTechnique.NOT_APPLICABLE,),
        applicable=False,
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_S3,
        cause="A permit is acquired but never released",
        conditions=(
            "The release is skipped on an exceptional path, or the holder "
            "never completes"
        ),
        consequences=(
            "The pool drains permanently; later acquirers starve or block "
            "forever (symptom: lost-permit)"
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_S3,
        cause="A permit is released that was never acquired (or twice)",
        conditions="None — j.u.c release has no ownership check",
        consequences=(
            "The permit count inflates above the configured bound; the "
            "pool admits more users than intended"
        ),
        testing_notes="Static analysis and dynamic permit accounting",
        techniques=(
            DetectionTechnique.STATIC_ANALYSIS,
            DetectionTechnique.STATIC_AND_DYNAMIC,
        ),
    ),
]


#: Curated rw-lock rows (R1..R4 under both guide words).
RWLOCK_ENTRIES: List[ClassificationEntry] = [
    ClassificationEntry(
        failure_class=FailureClass.FF_R1,
        cause=(
            "Thread accesses shared state without requesting the lock, or "
            "writes under a read hold"
        ),
        conditions="Two or more threads access the guarded state",
        consequences="Interference (reader sees a torn write, writers race)",
        testing_notes=(
            "Static analysis / model checking (often combined with dynamic "
            "analysis)"
        ),
        techniques=(DetectionTechnique.STATIC_ANALYSIS,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_R1,
        cause=(
            "Thread requests a mode it should not: write where read "
            "suffices, or read-to-write upgrade while holding read"
        ),
        conditions="None",
        consequences=(
            "Lost reader concurrency; the upgrade request deadlocks the "
            "thread on itself (the j.u.c upgrade is unsupported)"
        ),
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_R2,
        cause="The requested mode is never granted",
        conditions=(
            "Under reader preference a continuous reader stream keeps a "
            "queued writer out indefinitely; under writer preference "
            "queued writers shut readers out"
        ),
        consequences=(
            "The thread is permanently suspended (symptom: "
            "writer-starvation in the reader-preference case)"
        ),
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_R2,
        cause="Not applicable",
        conditions="",
        consequences="",
        testing_notes="",
        techniques=(DetectionTechnique.NOT_APPLICABLE,),
        applicable=False,
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_R3,
        cause="The hold is never released",
        conditions=(
            "Thread is in an endless loop, blocked on further input, or "
            "acquiring another primitive held elsewhere"
        ),
        consequences=(
            "Every acquirer of the opposite mode is blocked for good; a "
            "leaked read hold blocks all writers"
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_R3,
        cause="The hold is released prematurely",
        conditions="None",
        consequences=(
            "Subsequent statements access the guarded state unprotected"
        ),
        testing_notes="Static analysis and completion time of call",
        techniques=(
            DetectionTechnique.STATIC_ANALYSIS,
            DetectionTechnique.COMPLETION_TIME,
        ),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_R4,
        cause=(
            "Writer releases fully and re-acquires read instead of "
            "downgrading"
        ),
        conditions="Another writer is queued between the release and the re-acquire",
        consequences=(
            "The state the thread continues reading may have changed in "
            "the unlocked window (the downgrade would have been atomic)"
        ),
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_R4,
        cause="Writer downgrades to read before its updates are complete",
        conditions="None",
        consequences=(
            "Concurrent readers admitted by the downgrade observe a "
            "partial update"
        ),
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
]


#: Curated barrier rows (B1..B2 under both guide words).
BARRIER_ENTRIES: List[ClassificationEntry] = [
    ClassificationEntry(
        failure_class=FailureClass.FF_B1,
        cause="A party never arrives at the barrier",
        conditions=(
            "The party crashed, skipped the await on some path, or is "
            "blocked elsewhere"
        ),
        consequences=(
            "Every other party waits forever in the current generation "
            "(symptom: barrier-starve)"
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_B1,
        cause=(
            "A party arrives when it should not (extra await, or an await "
            "meant for a later phase)"
        ),
        conditions="The barrier's parties count does not match the protocol",
        consequences=(
            "The barrier trips early: some threads proceed into a phase "
            "whose preconditions are not established"
        ),
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_B2,
        cause="The trip never fires",
        conditions=(
            "Fewer live parties than the configured count, or the barrier "
            "was broken by an interrupt and never reset"
        ),
        consequences=(
            "All arrived parties stay suspended; late arrivals fail with "
            "BrokenBarrierException (symptom: barrier-starve)"
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_B2,
        cause="Not applicable",
        conditions="",
        consequences="",
        testing_notes="",
        techniques=(DetectionTechnique.NOT_APPLICABLE,),
        applicable=False,
    ),
]


#: All primitive rows in one list, the shape
#: :func:`repro.classify.taxonomy.entries_for` searches.
PRIMITIVE_ENTRIES: List[ClassificationEntry] = (
    SEMAPHORE_ENTRIES + RWLOCK_ENTRIES + BARRIER_ENTRIES
)


def derive_primitive_tables() -> Dict[str, List[AnalysisRow]]:
    """Run the HAZOP derivation for each primitive net against its
    curated table, exactly as :func:`derive_table1` does for Figure 1.

    Raises ``ValueError`` if any (transition, guide word) cell lacks an
    entry or any entry names a transition absent from its net — the
    completeness check, not an assumption.
    """
    sem_net, _ = build_semaphore_net()
    rw_net, _ = build_rwlock_net()
    bar_net, _ = build_barrier_net()
    return {
        "semaphore": derive_table1(sem_net, SEMAPHORE_ENTRIES),
        "rwlock": derive_table1(rw_net, RWLOCK_ENTRIES),
        "barrier": derive_table1(bar_net, BARRIER_ENTRIES),
    }
