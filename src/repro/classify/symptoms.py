"""From observed symptoms to failure classes.

Table 1's *Consequences* column is, read backwards, a diagnosis table:
an observed consequence (a thread permanently suspended, a call that
completed too early, interference on shared state...) points back at the
failure classes that can produce it.  This module makes that backward
reading executable:

* :class:`Symptom` — the observable consequences;
* :data:`CANDIDATES` — symptom → candidate failure classes (derived from
  the Consequences column);
* :func:`symptoms_from_run` — extract VM-level symptoms from a
  :class:`~repro.vm.kernel.RunResult`;
* :func:`classify_symptoms` — produce ranked :class:`ObservedFailure`
  records.

Dynamic detectors (:mod:`repro.detect`) feed additional symptoms in —
e.g. the lockset race detector produces :attr:`Symptom.DATA_RACE`, the
completion-time oracle produces the COMPLETED_* symptoms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.vm.events import Event, EventKind
from repro.vm.kernel import RunResult, RunStatus
from repro.vm.thread import ThreadState

from .taxonomy import FailureClass

__all__ = [
    "Symptom",
    "ObservedFailure",
    "ClassificationReport",
    "CANDIDATES",
    "SymptomTracker",
    "symptoms_from_run",
    "classify_symptoms",
]


class Symptom(enum.Enum):
    """Observable consequences, in the vocabulary of Table 1."""

    DATA_RACE = "interference on shared state (race condition)"
    UNNECESSARY_SYNC = "synchronization with no shared access"
    PERMANENTLY_BLOCKED = "thread permanently blocked acquiring a lock"
    DEADLOCK_CYCLE = "cyclic lock wait among threads"
    PERMANENTLY_WAITING = "thread permanently suspended in wait state"
    NEVER_COMPLETES = "thread never completes (step budget exhausted)"
    COMPLETED_EARLY = "call completed earlier than expected"
    COMPLETED_LATE = "call completed later than expected"
    LOST_NOTIFICATION = "notify delivered to an empty wait set"
    PREMATURE_REENTRY = "thread re-entered critical section prematurely"
    PREMATURE_RELEASE = "lock released before the critical section ended"
    SWALLOWED_INTERRUPT = "interrupt delivered but silently discarded"
    UNGUARDED_WAKEUP = "spurious wake-up trusted without re-checking the guard"
    TIMEOUT_AS_SUCCESS = "wait timeout treated as successful completion"
    # First-class-primitive symptoms (codes lost-permit /
    # writer-starvation / barrier-starve).
    LOST_PERMIT = "semaphore acquirer stuck on a pool no release refills"
    WRITER_STARVATION = "writer permanently queued behind admitted readers"
    BARRIER_STARVE = "barrier party waits for arrivals that never come"

    @property
    def code(self) -> str:
        """Kebab-case symptom code, e.g. ``"lost-permit"``."""
        return self.name.lower().replace("_", "-")


#: Symptom -> candidate failure classes, most likely first.  Derived from
#: the Consequences column of Table 1 (see taxonomy module).
CANDIDATES: Dict[Symptom, Tuple[FailureClass, ...]] = {
    Symptom.DATA_RACE: (FailureClass.FF_T1,),
    Symptom.UNNECESSARY_SYNC: (FailureClass.EF_T1,),
    Symptom.PERMANENTLY_BLOCKED: (FailureClass.FF_T2, FailureClass.FF_T4),
    Symptom.DEADLOCK_CYCLE: (FailureClass.FF_T4, FailureClass.FF_T2),
    # FF-T2 "way 2": a waiter whose guard never clears because other
    # threads repeatedly (re)acquire the lock it needs — the paper's
    # starvation case also ends "permanently suspended" (§5.2.1)
    Symptom.PERMANENTLY_WAITING: (
        FailureClass.FF_T5,
        FailureClass.EF_T3,
        FailureClass.FF_T2,
    ),
    Symptom.NEVER_COMPLETES: (FailureClass.FF_T4,),
    Symptom.COMPLETED_EARLY: (
        FailureClass.FF_T3,
        FailureClass.EF_T5,
        FailureClass.EF_T4,
    ),
    Symptom.COMPLETED_LATE: (FailureClass.EF_T3, FailureClass.EF_T1),
    Symptom.LOST_NOTIFICATION: (FailureClass.FF_T5,),
    Symptom.PREMATURE_REENTRY: (FailureClass.EF_T5,),
    Symptom.PREMATURE_RELEASE: (FailureClass.EF_T4,),
    # Environment-deviation symptoms (the EV extension rows): a wake the
    # environment caused, mishandled by the component.
    Symptom.SWALLOWED_INTERRUPT: (FailureClass.EV_INT,),
    Symptom.UNGUARDED_WAKEUP: (FailureClass.EV_SPU, FailureClass.EF_T5),
    Symptom.TIMEOUT_AS_SUCCESS: (FailureClass.EV_TMO,),
    # First-class-primitive symptoms: a dropped release (FF-S3) is the
    # likeliest way a pool stays empty, an empty pool that was never
    # filled is FF-S2; starvation and barrier abandonment map onto the
    # grant/arrival transitions of their nets.
    Symptom.LOST_PERMIT: (FailureClass.FF_S3, FailureClass.FF_S2),
    Symptom.WRITER_STARVATION: (FailureClass.FF_R2,),
    Symptom.BARRIER_STARVE: (FailureClass.FF_B1, FailureClass.FF_B2),
}


@dataclass(frozen=True)
class ObservedFailure:
    """One diagnosed anomaly: a symptom plus its candidate classes."""

    symptom: Symptom
    thread: Optional[str] = None
    component: Optional[str] = None
    method: Optional[str] = None
    detail: str = ""
    candidates: Tuple[FailureClass, ...] = ()

    @property
    def primary(self) -> Optional[FailureClass]:
        """The most likely failure class."""
        return self.candidates[0] if self.candidates else None

    def __str__(self) -> str:
        where = self.thread or "?"
        codes = "/".join(c.code for c in self.candidates) or "?"
        extra = f" — {self.detail}" if self.detail else ""
        return f"[{codes}] {where}: {self.symptom.value}{extra}"


@dataclass
class ClassificationReport:
    """All anomalies diagnosed for one execution."""

    failures: List[ObservedFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def classes_seen(self) -> List[FailureClass]:
        """Primary failure classes, deduplicated, in diagnosis order."""
        seen: Dict[FailureClass, None] = {}
        for failure in self.failures:
            if failure.primary is not None:
                seen.setdefault(failure.primary)
        return list(seen)

    def by_class(self, failure_class: FailureClass) -> List[ObservedFailure]:
        return [f for f in self.failures if failure_class in f.candidates]

    def describe(self) -> str:
        if self.clean:
            return "no concurrency failures observed"
        return "\n".join(str(f) for f in self.failures)


def classify_symptoms(
    observations: Sequence[Tuple[Symptom, Dict[str, Any]]]
) -> ClassificationReport:
    """Turn raw (symptom, context) observations into a report.

    ``context`` may carry ``thread``, ``component``, ``method``, and
    ``detail`` keys; everything else is ignored.
    """
    report = ClassificationReport()
    for symptom, context in observations:
        report.failures.append(
            ObservedFailure(
                symptom=symptom,
                thread=context.get("thread"),
                component=context.get("component"),
                method=context.get("method"),
                detail=str(context.get("detail", "")),
                candidates=CANDIDATES.get(symptom, ()),
            )
        )
    return report


class SymptomTracker:
    """Streaming VM-level symptom extraction.

    Consumes the event stream as it is emitted and keeps only O(threads +
    monitors) state — the open-call stack per thread, which threads ever
    waited on which monitor, and the notifies that woke nobody.  Combined
    with the :class:`~repro.vm.kernel.RunResult` (which carries final
    thread states but, under ``trace_mode="none"``, no trace), the tracker
    reproduces exactly what :func:`symptoms_from_run` reads off a full
    trace; that function is now a replay wrapper around this class.
    """

    def __init__(self) -> None:
        # thread -> stack of open (component, method) calls; top = innermost
        self._open_calls: Dict[str, List[Tuple[str, str]]] = {}
        # monitor -> threads that ever entered its wait set
        self._waits: Dict[Optional[str], Set[str]] = {}
        # notifies with an empty "woken" list, in emission order
        self._lost: List[Tuple[str, str, Optional[str], Optional[str], Optional[str]]] = []
        # thread -> component monitors released while a call on that
        # component is still open (cleared on reacquire / call end)
        self._released: Dict[str, Set[str]] = {}
        # (thread, component, method) triples that accessed component
        # state after such a release — the EF-T4 premature-release signal
        self._premature: Dict[Tuple[str, str, str], None] = {}
        # -- environment-deviation state (EV rows) --
        # monitor -> notifies emitted on it so far (running count)
        self._notify_counts: Dict[Optional[str], int] = {}
        # (monitor, thread) -> notifies *that thread* emitted on the monitor
        self._notifies_by: Dict[Tuple[Optional[str], str], int] = {}
        # thread -> (monitor, others' notify count at wait entry)
        self._wait_marks: Dict[str, Tuple[Optional[str], int]] = {}
        # thread -> an InterruptedError was (or will be, on reacquisition)
        # delivered during its current open call
        self._interrupt_pending: Dict[str, None] = {}
        # thread -> ("spurious" | "timeout", monitor, others' notify count
        # at wait entry): woke without a notify and has not re-waited since
        self._suspect_wakes: Dict[str, Tuple[str, Optional[str], int]] = {}
        # recorded environment-deviation findings, in emission order
        self._env_findings: List[Tuple[Symptom, Dict[str, Any]]] = []
        # -- first-class-primitive state --
        # thread -> ("semaphore" | "read" | "write", primitive name): an
        # outstanding sem/rw acquire (cleared when granted or abandoned)
        self._prim_blocked: Dict[str, Tuple[str, str]] = {}
        # thread -> barrier it is parked at
        self._barrier_wait: Dict[str, str] = {}

    def reset(self) -> None:
        self.__init__()

    def _in_open_call(self, thread: str, component: Optional[str]) -> bool:
        return any(
            comp == component for comp, _ in self._open_calls.get(thread, ())
        )

    def on_event(self, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.CALL_BEGIN:
            self._open_calls.setdefault(event.thread, []).append(
                (event.component or "?", event.method or "?")
            )
        elif kind is EventKind.CALL_END:
            stack = self._open_calls.get(event.thread)
            if stack:
                component, _ = stack.pop()
                self._released.get(event.thread, set()).discard(component)
            self._close_env_markers(event)
        elif kind is EventKind.MONITOR_WAIT:
            self._waits.setdefault(event.monitor, set()).add(event.thread)
            # Entering a wait means the guard was (re-)checked and found
            # false — a prior suspect wake was handled correctly.
            self._suspect_wakes.pop(event.thread, None)
            self._wait_marks[event.thread] = (
                event.monitor,
                self._others_notifies(event.monitor, event.thread),
            )
        elif kind is EventKind.MONITOR_NOTIFIED:
            self._on_wake(event)
        elif kind is EventKind.INTERRUPT:
            # Delivery is certain only for a waiting/blocked target (the
            # kernel injects InterruptedError at the resumption point); a
            # runnable target merely gets its flag set, which a component
            # that never waits again is allowed to ignore.
            if event.detail.get("thread_state") in ("waiting", "blocked"):
                self._interrupt_pending.setdefault(event.thread)
            # An interrupted primitive acquirer or barrier party resumes
            # immediately with InterruptedError — no longer stuck.
            self._prim_blocked.pop(event.thread, None)
            self._barrier_wait.pop(event.thread, None)
        elif kind is EventKind.MONITOR_RELEASE:
            # The full (non-reentrant) release of a monitor whose component
            # still has an open call on this thread: the critical section
            # is no longer protected.  Normal method exits look the same
            # (the wrapper releases just before CALL_END) but perform no
            # further component access, so they never flag.
            if not event.detail.get("reentrant") and not event.detail.get(
                "abandoned"
            ):
                if event.monitor and self._in_open_call(
                    event.thread, event.monitor
                ):
                    self._released.setdefault(event.thread, set()).add(
                        event.monitor
                    )
        elif kind is EventKind.MONITOR_ACQUIRE:
            if event.monitor:
                self._released.get(event.thread, set()).discard(event.monitor)
        elif kind in (EventKind.READ, EventKind.WRITE):
            if event.component and event.component in self._released.get(
                event.thread, ()
            ):
                self._premature.setdefault(
                    (
                        event.thread,
                        event.component,
                        event.method or "?",
                    )
                )
        elif kind in (EventKind.NOTIFY, EventKind.NOTIFY_ALL):
            self._notify_counts[event.monitor] = (
                self._notify_counts.get(event.monitor, 0) + 1
            )
            by_key = (event.monitor, event.thread)
            self._notifies_by[by_key] = self._notifies_by.get(by_key, 0) + 1
            if not event.detail.get("woken"):
                self._lost.append(
                    (
                        event.thread,
                        kind.value,
                        event.monitor,
                        event.component,
                        event.method,
                    )
                )
        elif kind is EventKind.SEM_REQUEST:
            self._prim_blocked[event.thread] = ("semaphore", event.monitor or "?")
        elif kind is EventKind.RW_REQUEST:
            self._prim_blocked[event.thread] = (
                event.detail.get("mode", "read"),
                event.monitor or "?",
            )
        elif kind in (
            EventKind.SEM_ACQUIRE,
            EventKind.RW_ACQUIRE,
            EventKind.RW_DOWNGRADE,
        ):
            self._prim_blocked.pop(event.thread, None)
        elif kind is EventKind.WAIT_TIMEOUT:
            if event.detail.get("primitive") == "semaphore":
                # A failed timed tryAcquire resumed with False.
                self._prim_blocked.pop(event.thread, None)
        elif kind is EventKind.BARRIER_AWAIT:
            if not event.detail.get("broken"):
                self._barrier_wait[event.thread] = event.monitor or "?"
        elif kind is EventKind.BARRIER_RESUME:
            self._barrier_wait.pop(event.thread, None)
        elif kind is EventKind.BARRIER_BROKEN:
            for waiter in event.detail.get("waiters", ()):
                self._barrier_wait.pop(waiter, None)

    def _others_notifies(self, monitor: Optional[str], thread: str) -> int:
        """Notifies emitted on ``monitor`` by threads other than ``thread``."""
        return self._notify_counts.get(monitor, 0) - self._notifies_by.get(
            (monitor, thread), 0
        )

    def _on_wake(self, event: Event) -> None:
        """MONITOR_NOTIFIED: arm environment-deviation markers by reason."""
        reason = event.detail.get("reason")
        if reason == "interrupt":
            self._interrupt_pending.setdefault(event.thread)
            self._wait_marks.pop(event.thread, None)
            return
        if reason in ("spurious", "timeout"):
            mark = self._wait_marks.pop(event.thread, None)
            if mark is not None:
                monitor, others_then = mark
                self._suspect_wakes[event.thread] = (reason, monitor, others_then)
            return
        self._wait_marks.pop(event.thread, None)

    def _close_env_markers(self, event: Event) -> None:
        """CALL_END: judge any armed environment markers for this thread.

        A call end carrying ``interrupted=True`` is the *correct* response
        to interruption (the error propagated), so it discharges both
        markers without a finding.
        """
        thread = event.thread
        interrupted_exit = bool(event.detail.get("interrupted"))
        if self._interrupt_pending.pop(thread, -1) != -1 and not interrupted_exit:
            self._env_findings.append(
                (
                    Symptom.SWALLOWED_INTERRUPT,
                    {
                        "thread": thread,
                        "component": event.component,
                        "method": event.method,
                        "detail": f"{event.component}.{event.method} completed "
                        f"normally although an interrupt was delivered",
                    },
                )
            )
        suspect = self._suspect_wakes.pop(thread, None)
        if suspect is not None and not interrupted_exit:
            reason, monitor, others_then = suspect
            if self._others_notifies(monitor, thread) != others_then:
                # Some other thread notified this monitor between the wait
                # entry and the call end — the guard may legitimately have
                # become true, so the completion is not evidence of a bug.
                return
            symptom = (
                Symptom.TIMEOUT_AS_SUCCESS
                if reason == "timeout"
                else Symptom.UNGUARDED_WAKEUP
            )
            how = (
                "its timed wait expired"
                if reason == "timeout"
                else "it was woken spuriously"
            )
            self._env_findings.append(
                (
                    symptom,
                    {
                        "thread": thread,
                        "component": event.component,
                        "method": event.method,
                        "detail": f"{event.component}.{event.method} completed "
                        f"after {how} on {monitor} with no notify in between",
                    },
                )
            )

    def observations(self, result: RunResult) -> List[Tuple[Symptom, Dict[str, Any]]]:
        """The VM-level symptoms, given the run outcome for final states."""
        observations: List[Tuple[Symptom, Dict[str, Any]]] = list(
            self._env_findings
        )
        if result.status is RunStatus.STEP_LIMIT:
            observations.append(
                (
                    Symptom.NEVER_COMPLETES,
                    {"detail": f"step budget exhausted after {result.steps} steps"},
                )
            )
        if result.status is RunStatus.DEADLOCK:
            observations.append(
                (
                    Symptom.DEADLOCK_CYCLE,
                    {
                        "thread": ", ".join(result.deadlock_cycle),
                        "detail": f"cycle: {' -> '.join(result.deadlock_cycle)}",
                    },
                )
            )
        for thread, state in result.thread_states.items():
            stack = self._open_calls.get(thread)
            context: Dict[str, Any] = {"thread": thread}
            if stack:
                component, method = stack[-1]
                context["component"] = component
                context["method"] = method
                context["detail"] = f"inside {component}.{method}"
            if state == ThreadState.BLOCKED.value and thread not in result.deadlock_cycle:
                prim = self._prim_blocked.get(thread)
                if prim is not None and prim[0] == "semaphore":
                    context["detail"] = (
                        f"stuck acquiring semaphore {prim[1]}; no release "
                        f"ever refilled the pool"
                    )
                    observations.append((Symptom.LOST_PERMIT, context))
                elif prim is not None and prim[0] == "write":
                    context["detail"] = (
                        f"write acquire on {prim[1]} never granted"
                    )
                    observations.append((Symptom.WRITER_STARVATION, context))
                else:
                    if prim is not None:  # read-mode rw acquire
                        context["detail"] = (
                            f"read acquire on {prim[1]} never granted"
                        )
                    observations.append((Symptom.PERMANENTLY_BLOCKED, context))
            elif state == ThreadState.WAITING.value:
                barrier = self._barrier_wait.get(thread)
                if barrier is not None:
                    context["detail"] = (
                        f"parked at barrier {barrier}; the remaining "
                        f"parties never arrived"
                    )
                    observations.append((Symptom.BARRIER_STARVE, context))
                else:
                    observations.append((Symptom.PERMANENTLY_WAITING, context))
        # A notify that woke nobody is only evidence of failure when some
        # thread on the same monitor ended up waiting forever — otherwise it
        # is the normal "notify with nobody waiting" of a correct monitor.
        waiting_monitors = {
            monitor
            for monitor, threads in self._waits.items()
            if any(
                result.thread_states.get(t) == ThreadState.WAITING.value
                for t in threads
            )
        }
        for thread, component, method in self._premature:
            observations.append(
                (
                    Symptom.PREMATURE_RELEASE,
                    {
                        "thread": thread,
                        "component": component,
                        "method": method,
                        "detail": f"{component}.{method} accessed shared state "
                        f"after releasing the monitor mid-call",
                    },
                )
            )
        for thread, kind_value, monitor, component, method in self._lost:
            if monitor in waiting_monitors:
                observations.append(
                    (
                        Symptom.LOST_NOTIFICATION,
                        {
                            "thread": thread,
                            "component": component,
                            "method": method,
                            "detail": f"{kind_value} on {monitor} woke nobody",
                        },
                    )
                )
        return observations


def symptoms_from_run(result: RunResult) -> List[Tuple[Symptom, Dict[str, Any]]]:
    """Extract the VM-level symptoms visible in a run outcome alone
    (no oracle or detector input): permanently blocked/waiting threads,
    deadlock cycles, step-budget exhaustion, and lost notifications.

    Batch form of :class:`SymptomTracker`: replays the stored trace
    through a tracker and reads its observations.
    """
    tracker = SymptomTracker()
    for event in result.trace:
        tracker.on_event(event)
    return tracker.observations(result)
