"""The paper's Table-1 failure taxonomy as a data model.

Ten failure classes: for each Figure-1 transition T1..T5, the two HAZOP
deviations *failure to fire* (FF) and *erroneous firing* (EF).  Together
with correct firing these form "a complete set of transition firings"
(Section 5).  Some classes carry several distinct causes (Table 1 lists
two causes for FF-T4), so the canonical table is a list of
:class:`ClassificationEntry` rows, one per (class, cause).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FailureMode",
    "FailureClass",
    "DetectionTechnique",
    "ClassificationEntry",
    "TABLE1_ENTRIES",
    "ENVIRONMENT_ENTRIES",
    "entries_for",
    "entry_count",
]


class FailureMode(enum.Enum):
    """The HAZOP deviations applied to every transition.

    The paper analyzes the first two for every transition.  The third is
    the extension guide-word for T5: the transition fires because of the
    *environment* (interrupt, timeout, spurious wakeup) rather than a
    notification — the wait-exit modes Java permits that the paper's
    testing notes keep circling.
    """

    FAILURE_TO_FIRE = "Failure to fire"
    ERRONEOUS_FIRING = "Erroneous firing"
    ENVIRONMENTAL_FIRING = "Environmental firing"


class FailureClass(enum.Enum):
    """The ten concurrency failure classes of Table 1, plus the three
    environment-deviation classes of the T5 extension (``EV-*``): a wait
    that returns by interrupt, timeout, or spurious wakeup, mishandled by
    the component.  The first-class-primitive extension re-applies the
    two HAZOP guide words to the semaphore/rw-lock/barrier transitions
    (``FF-S1`` .. ``EF-B2``)."""

    FF_T1 = ("T1", FailureMode.FAILURE_TO_FIRE)
    EF_T1 = ("T1", FailureMode.ERRONEOUS_FIRING)
    FF_T2 = ("T2", FailureMode.FAILURE_TO_FIRE)
    EF_T2 = ("T2", FailureMode.ERRONEOUS_FIRING)
    FF_T3 = ("T3", FailureMode.FAILURE_TO_FIRE)
    EF_T3 = ("T3", FailureMode.ERRONEOUS_FIRING)
    FF_T4 = ("T4", FailureMode.FAILURE_TO_FIRE)
    EF_T4 = ("T4", FailureMode.ERRONEOUS_FIRING)
    FF_T5 = ("T5", FailureMode.FAILURE_TO_FIRE)
    EF_T5 = ("T5", FailureMode.ERRONEOUS_FIRING)
    # Environment-deviation extension (T5 fired by the environment).
    EV_INT = ("T5", FailureMode.ENVIRONMENTAL_FIRING, "EV-INT")
    EV_TMO = ("T5", FailureMode.ENVIRONMENTAL_FIRING, "EV-TMO")
    EV_SPU = ("T5", FailureMode.ENVIRONMENTAL_FIRING, "EV-SPU")
    # First-class-primitive extension: the same two guide words applied
    # to the semaphore (S1..S3), rw-lock (R1..R4), and barrier (B1..B2)
    # protocol transitions the VM promotes alongside the monitor's T1..T5.
    # Curated rows live in :mod:`repro.classify.primitives`.
    FF_S1 = ("S1", FailureMode.FAILURE_TO_FIRE)
    EF_S1 = ("S1", FailureMode.ERRONEOUS_FIRING)
    FF_S2 = ("S2", FailureMode.FAILURE_TO_FIRE)
    EF_S2 = ("S2", FailureMode.ERRONEOUS_FIRING)
    FF_S3 = ("S3", FailureMode.FAILURE_TO_FIRE)
    EF_S3 = ("S3", FailureMode.ERRONEOUS_FIRING)
    FF_R1 = ("R1", FailureMode.FAILURE_TO_FIRE)
    EF_R1 = ("R1", FailureMode.ERRONEOUS_FIRING)
    FF_R2 = ("R2", FailureMode.FAILURE_TO_FIRE)
    EF_R2 = ("R2", FailureMode.ERRONEOUS_FIRING)
    FF_R3 = ("R3", FailureMode.FAILURE_TO_FIRE)
    EF_R3 = ("R3", FailureMode.ERRONEOUS_FIRING)
    FF_R4 = ("R4", FailureMode.FAILURE_TO_FIRE)
    EF_R4 = ("R4", FailureMode.ERRONEOUS_FIRING)
    FF_B1 = ("B1", FailureMode.FAILURE_TO_FIRE)
    EF_B1 = ("B1", FailureMode.ERRONEOUS_FIRING)
    FF_B2 = ("B2", FailureMode.FAILURE_TO_FIRE)
    EF_B2 = ("B2", FailureMode.ERRONEOUS_FIRING)

    def __init__(
        self, transition: str, mode: FailureMode, code: Optional[str] = None
    ) -> None:
        self.transition = transition
        self.mode = mode
        self._code = code

    @property
    def code(self) -> str:
        """The paper's short code, e.g. ``"FF-T1"`` (``"EV-*"`` for the
        environment extension)."""
        if self._code is not None:
            return self._code
        prefix = "FF" if self.mode is FailureMode.FAILURE_TO_FIRE else "EF"
        return f"{prefix}-{self.transition}"

    @classmethod
    def from_code(cls, code: str) -> "FailureClass":
        for member in cls:
            if member.code == code:
                return member
        raise ValueError(f"unknown failure class code {code!r}")


class DetectionTechnique(enum.Enum):
    """Technique families named in Table 1's "Testing Notes" column."""

    STATIC_ANALYSIS = "static analysis / model checking"
    STATIC_AND_DYNAMIC = "static and dynamic analysis"
    COMPLETION_TIME = "check completion time of call"
    NOT_APPLICABLE = "not applicable"


@dataclass(frozen=True)
class ClassificationEntry:
    """One row of Table 1.

    ``applicable=False`` reproduces the EF-T2 row, which the paper marks
    "Not applicable" because the JVM is assumed to hand out locks
    correctly.
    """

    failure_class: FailureClass
    cause: str
    conditions: str
    consequences: str
    testing_notes: str
    techniques: Tuple[DetectionTechnique, ...]
    applicable: bool = True

    @property
    def transition(self) -> str:
        return self.failure_class.transition

    @property
    def mode(self) -> FailureMode:
        return self.failure_class.mode


#: The canonical Table 1, row for row (FF-T4 contributes two cause rows,
#: exactly as printed in the paper).
TABLE1_ENTRIES: List[ClassificationEntry] = [
    ClassificationEntry(
        failure_class=FailureClass.FF_T1,
        cause="Thread does not access a synchronized block when required",
        conditions="Two or more threads access a shared resource",
        consequences=(
            "Interference (also known as a race condition or data race)"
        ),
        testing_notes=(
            "Static analysis / model checking (often combined with dynamic "
            "analysis)"
        ),
        techniques=(DetectionTechnique.STATIC_ANALYSIS,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_T1,
        cause="Program logic accesses critical section",
        conditions=(
            "No more than one thread accesses shared resources. The thread "
            "is not required to wait or notify other threads."
        ),
        consequences="Unnecessary synchronization",
        testing_notes=(
            "Static analysis / model checking (often combined with dynamic "
            "analysis)"
        ),
        techniques=(DetectionTechnique.STATIC_ANALYSIS,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_T2,
        cause="The object lock to be acquired has been acquired by another thread",
        conditions=(
            "Another thread has acquired the lock being acquired by this "
            "thread. This can occur in 2 ways: 1) one thread continuously "
            "holds the lock, or 2) one or more threads repeatedly acquire "
            "the lock being requested by this thread."
        ),
        consequences="The thread is permanently suspended",
        testing_notes="Static and dynamic analysis",
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_T2,
        cause="Not applicable",
        conditions="",
        consequences="",
        testing_notes="",
        techniques=(DetectionTechnique.NOT_APPLICABLE,),
        applicable=False,
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_T3,
        cause="No call to wait is made",
        conditions="Thread is required to make a call to wait",
        consequences=(
            "Program code may erroneously execute in a critical section, or "
            "leave critical section prematurely."
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_T3,
        cause="Program logic makes an erroneous call to wait",
        conditions="A call to wait is not desired",
        consequences=(
            "A thread may suspend indefinitely if no other thread exists to "
            "notify it. The object lock is released."
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_T4,
        cause="The thread never releases object lock.",
        conditions=(
            "Thread is either in endless loop, waiting for blocking input "
            "(which is never received), or acquiring an additional lock "
            "which is locked by another thread"
        ),
        consequences=(
            "Thread never completes. Other threads may be blocked if they "
            "are waiting for the lock."
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_T4,
        cause="The thread fires T3, that is, it waits instead",
        conditions="None",
        consequences=(
            "Thread waits instead of completing and leaving the critical "
            "section."
        ),
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_T4,
        cause="Thread releases the object lock prematurely",
        conditions="None",
        consequences=(
            "Thread exits and subsequent statements may access shared "
            "resources."
        ),
        testing_notes="Static analysis and completion time of call",
        techniques=(
            DetectionTechnique.STATIC_ANALYSIS,
            DetectionTechnique.COMPLETION_TIME,
        ),
    ),
    ClassificationEntry(
        failure_class=FailureClass.FF_T5,
        cause="Thread is not notified",
        conditions=(
            "No other thread calls notify whilst this thread is in the wait "
            "state."
        ),
        consequences="Thread is permanently suspended",
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EF_T5,
        cause="Thread is notified before it should be",
        conditions="None",
        consequences="Thread prematurely re-enters the critical section",
        testing_notes="Check completion time of call",
        techniques=(DetectionTechnique.COMPLETION_TIME,),
    ),
]


#: The environment-deviation extension rows: T5 fired by the environment
#: instead of a notification, with the component mishandling the exit.
#: These are *not* rows of the printed Table 1 — they extend it with the
#: wait-exit modes (interrupt / timeout / spurious wakeup) the paper's
#: testing notes and the JLS both name.
ENVIRONMENT_ENTRIES: List[ClassificationEntry] = [
    ClassificationEntry(
        failure_class=FailureClass.EV_INT,
        cause=(
            "The wait exits by thread interruption and the component "
            "swallows the InterruptedException instead of propagating or "
            "re-asserting it"
        ),
        conditions="The environment (or another thread) interrupts a waiter",
        consequences=(
            "The interrupt is lost: the call completes as if nothing "
            "happened and cancellation never takes effect"
        ),
        testing_notes=(
            "Static analysis of the exception handler; dynamic analysis of "
            "interrupted calls that complete normally"
        ),
        techniques=(
            DetectionTechnique.STATIC_ANALYSIS,
            DetectionTechnique.STATIC_AND_DYNAMIC,
        ),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EV_TMO,
        cause=(
            "A timed wait expires and the component treats the timeout "
            "return as success without re-checking the guard"
        ),
        conditions="A timed wait expires before any notification arrives",
        consequences=(
            "The call returns a result computed from an unsatisfied guard "
            "(wrong value, or shared state accessed in an invalid state)"
        ),
        testing_notes=(
            "Dynamic analysis: a timeout-exited wait followed by normal "
            "completion with no intervening notification"
        ),
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
    ClassificationEntry(
        failure_class=FailureClass.EV_SPU,
        cause=(
            "A spurious wakeup returns from the wait and the component "
            "proceeds without re-checking the guard (if-guard instead of a "
            "wait loop)"
        ),
        conditions="The JVM performs a permitted spurious wakeup",
        consequences=(
            "Thread re-enters the critical section with the guard violated"
        ),
        testing_notes=(
            "Dynamic analysis under spurious-wakeup injection: a spurious "
            "wake followed by completion with no re-wait and no notification"
        ),
        techniques=(DetectionTechnique.STATIC_AND_DYNAMIC,),
    ),
]


def entries_for(failure_class: FailureClass) -> List[ClassificationEntry]:
    """All rows of one failure class, searching Table 1, the environment
    extension (FF-T4 has two Table-1 rows), and the first-class-primitive
    extension tables."""
    # Imported here: primitives.py builds its rows from this module.
    from .primitives import PRIMITIVE_ENTRIES

    return [
        e
        for e in TABLE1_ENTRIES + ENVIRONMENT_ENTRIES + PRIMITIVE_ENTRIES
        if e.failure_class is failure_class
    ]


def entry_count() -> Dict[str, int]:
    """Row count per transition (T1..T5), matching the printed table."""
    counts: Dict[str, int] = {}
    for entry in TABLE1_ENTRIES:
        counts[entry.transition] = counts.get(entry.transition, 0) + 1
    return counts
