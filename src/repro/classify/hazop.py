"""HAZOP-style derivation of the failure classification (paper Section 5).

*"Following techniques of hazard/safety analysis, failure conditions are
identified for each of the transitions.  This approach is taken for
completeness, to ensure all failures are identified and classified.  Using
a HAZOP style of analysis, we analyze each transition for two deviations,
1) failure to fire the transition, and 2) erroneous firing of the
transition."*

The engine here is generic: it takes any Petri net plus per-transition
semantic metadata and applies the two deviation guide-words, producing one
:class:`DeviationItem` per (transition, deviation) — the analysis skeleton.
For the Figure-1 concurrency model, the curated Table-1 knowledge
(:mod:`repro.classify.taxonomy`) is joined onto that skeleton, and
:func:`derive_table1` verifies the join is *complete* (every transition ×
both deviations is covered) and *consistent* (no taxonomy entry refers to
a transition that does not exist in the model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.petri import PetriNet, build_figure1_net

from .taxonomy import (
    TABLE1_ENTRIES,
    ClassificationEntry,
    FailureClass,
    FailureMode,
)

__all__ = ["DeviationItem", "AnalysisRow", "hazop_skeleton", "derive_table1"]


@dataclass(frozen=True)
class DeviationItem:
    """One cell of the HAZOP skeleton: a transition under a deviation.

    ``structural_effect`` is derived mechanically from the net: which
    token movements do not happen (failure to fire) or happen when they
    should not (erroneous firing)."""

    transition: str
    transition_label: str
    mode: FailureMode
    structural_effect: str


@dataclass(frozen=True)
class AnalysisRow:
    """A HAZOP skeleton item joined with its curated Table-1 entries."""

    item: DeviationItem
    entries: Tuple[ClassificationEntry, ...]

    @property
    def failure_class(self) -> FailureClass:
        prefix = "FF" if self.item.mode is FailureMode.FAILURE_TO_FIRE else "EF"
        return FailureClass.from_code(f"{prefix}-{self.item.transition}")


def _structural_effect(net: PetriNet, transition: str, mode: FailureMode) -> str:
    """Mechanical description of the deviation in token terms."""
    pre = net.preset(transition)
    post = net.postset(transition)
    consumed = ", ".join(sorted(pre)) or "nothing"
    produced = ", ".join(sorted(post)) or "nothing"
    if mode is FailureMode.FAILURE_TO_FIRE:
        return (
            f"tokens remain in {{{consumed}}}; {{{produced}}} never receive "
            f"the marking this transition produces"
        )
    return (
        f"tokens move from {{{consumed}}} to {{{produced}}} although the "
        f"firing was not intended"
    )


def hazop_skeleton(net: Optional[PetriNet] = None) -> List[DeviationItem]:
    """Apply the two deviation guide-words to every transition of ``net``
    (the Figure-1 model by default), in declaration order.

    This is the completeness argument made executable: correct firing plus
    these two deviations partition all possible behaviours of a transition.
    """
    if net is None:
        net, _ = build_figure1_net()
    items: List[DeviationItem] = []
    for transition in net.transitions:
        for mode in (FailureMode.FAILURE_TO_FIRE, FailureMode.ERRONEOUS_FIRING):
            items.append(
                DeviationItem(
                    transition=transition.name,
                    transition_label=transition.label,
                    mode=mode,
                    structural_effect=_structural_effect(
                        net, transition.name, mode
                    ),
                )
            )
    return items


def derive_table1(
    net: Optional[PetriNet] = None,
    entries: Sequence[ClassificationEntry] = tuple(TABLE1_ENTRIES),
) -> List[AnalysisRow]:
    """Join the HAZOP skeleton with the curated classification.

    Raises ``ValueError`` when the join is incomplete (a transition ×
    deviation cell with no entry) or inconsistent (an entry whose
    transition is not in the model) — i.e. the function *checks* the
    paper's completeness claim rather than assuming it.
    """
    skeleton = hazop_skeleton(net)
    by_cell: Dict[Tuple[str, FailureMode], List[ClassificationEntry]] = {}
    for entry in entries:
        by_cell.setdefault((entry.transition, entry.mode), []).append(entry)

    model_transitions = {item.transition for item in skeleton}
    for (transition, _mode), _ in by_cell.items():
        if transition not in model_transitions:
            raise ValueError(
                f"classification entry references transition {transition!r} "
                f"not present in the model"
            )

    rows: List[AnalysisRow] = []
    for item in skeleton:
        cell = by_cell.get((item.transition, item.mode))
        if not cell:
            raise ValueError(
                f"HAZOP incompleteness: no classification entry for "
                f"{item.transition} / {item.mode.value}"
            )
        rows.append(AnalysisRow(item=item, entries=tuple(cell)))
    return rows
