"""Test driver: execute a :class:`TestSequence` deterministically.

The driver is Brinch Hansen's step 3 made executable (*"the tester
constructs a set of test processes that will execute the monitor calls"*,
scheduled *"by means of a clock used for testing only"*): one VM thread
per logical sequence thread, each awaiting the abstract clock before each
of its calls; the kernel's ``auto_tick`` advances the clock exactly when
every thread at the current time has run to completion or blocked.

The result bundles the raw :class:`~repro.vm.kernel.RunResult`, the
completion-time violations, the CoFG arc coverage the sequence achieved,
and the classified findings — everything the paper's method produces for
one test sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Type

from repro.analysis.builder import build_all_cofgs
from repro.coverage.tracker import CoverageTracker
from repro.detect.completion import Violation, check_completion_times
from repro.detect.report import DetectionReport, analyze_run
from repro.vm.api import MonitorComponent
from repro.vm.kernel import Kernel, RunResult
from repro.vm.monitor import SelectionPolicy
from repro.vm.scheduler import Scheduler
from repro.vm.syscalls import AwaitTime

from .sequence import TestSequence

__all__ = ["SequenceOutcome", "SequenceRunner", "run_sequence"]


@dataclass
class SequenceOutcome:
    """Everything observed while running one test sequence."""

    sequence: TestSequence
    result: RunResult
    violations: List[Violation]
    coverage: CoverageTracker
    report: DetectionReport
    call_results: Dict[str, List[Any]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when no completion-time violation and no crash occurred."""
        return not self.violations and not self.result.crashed

    def describe(self) -> str:
        lines = [
            f"sequence {self.sequence.name!r}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"(status={self.result.status.value}, steps={self.result.steps})"
        ]
        for violation in self.violations:
            lines.append(f"  violation: {violation}")
        lines.append(
            f"  coverage: {self.coverage.covered_arcs}/"
            f"{self.coverage.total_arcs} arcs"
        )
        return "\n".join(lines)


class SequenceRunner:
    """Runs test sequences against fresh component instances.

    Args:
        component_factory: zero-arg callable building the component under
            test (a class works).
        scheduler / lock_policy / notify_policy / seed: kernel knobs, so
            the same sequence can be replayed under different JVM models.
        max_steps: kernel step budget (bounds FF-T4 endless loops).
    """

    def __init__(
        self,
        component_factory: Callable[[], MonitorComponent],
        scheduler: Optional[Scheduler] = None,
        lock_policy: SelectionPolicy = SelectionPolicy.FIFO,
        notify_policy: SelectionPolicy = SelectionPolicy.FIFO,
        seed: Optional[int] = None,
        max_steps: int = 50_000,
        spurious_wakeup_rate: float = 0.0,
    ) -> None:
        self.component_factory = component_factory
        self.scheduler = scheduler
        self.lock_policy = lock_policy
        self.notify_policy = notify_policy
        self.seed = seed
        self.max_steps = max_steps
        self.spurious_wakeup_rate = spurious_wakeup_rate

    def _build_kernel(self) -> Kernel:
        return Kernel(
            scheduler=self.scheduler,
            lock_policy=self.lock_policy,
            notify_policy=self.notify_policy,
            seed=self.seed,
            max_steps=self.max_steps,
            auto_tick=True,
            spurious_wakeup_rate=self.spurious_wakeup_rate,
        )

    def run(self, sequence: TestSequence) -> SequenceOutcome:
        """Execute ``sequence`` on a fresh component and analyse the run."""
        kernel = self._build_kernel()
        component = kernel.register(self.component_factory())
        call_results: Dict[str, List[Any]] = {t: [] for t in sequence.threads()}

        def make_body(thread_name: str):
            calls = sequence.calls_for(thread_name)

            def body():
                for call in calls:
                    yield AwaitTime(call.at)
                    method = getattr(component, call.method)
                    value = yield from method(*call.args, **call.kwargs_dict())
                    call_results[thread_name].append(value)

            return body

        for thread_name in sequence.threads():
            kernel.spawn(make_body(thread_name), name=thread_name)

        result = kernel.run()
        expectations = sequence.expectations(component.vm_name)
        violations = check_completion_times(result.trace, expectations)
        coverage = CoverageTracker(build_all_cofgs(type(component)))
        coverage.feed(result.trace)
        report = analyze_run(result, expectations)
        return SequenceOutcome(
            sequence=sequence,
            result=result,
            violations=violations,
            coverage=coverage,
            report=report,
            call_results=call_results,
        )


def run_sequence(
    component_factory: Callable[[], MonitorComponent],
    sequence: TestSequence,
    **kwargs: Any,
) -> SequenceOutcome:
    """One-shot convenience wrapper around :class:`SequenceRunner`."""
    return SequenceRunner(component_factory, **kwargs).run(sequence)
