"""Schedule exploration: systematic DFS and random/PCT fuzzing.

The VM funnels every nondeterministic choice through ``Scheduler.pick``,
so exploring schedules is exploring a decision tree:

* :func:`explore_systematic` — stateless depth-first enumeration: replay a
  decision prefix, let FIFO fill the suffix, record every decision made,
  then branch on untried alternatives (deepest first).  Exhaustive up to
  ``max_depth`` decisions, bounded by ``max_runs``.
* :func:`explore_random` — Stoller-style randomized scheduling, one run
  per seed (the reproducible stand-in for rerunning on a real JVM).
* :func:`explore_pct` — one PCT trial per seed (random priorities plus
  ``d-1`` demotion points; see :mod:`repro.vm.pct`).

All three return :class:`ExplorationResult`, which aggregates statuses,
failure signatures, and optionally CoFG coverage saturation — the data of
the Ext-B study (how many schedules until all arcs are covered / the
seeded bug is exposed?).

Two hooks exist for callers that process runs as a *stream* rather than
an in-memory list (the parallel campaign engine, :mod:`repro.engine`):

* ``on_run`` — a callback invoked with each :class:`ExplorationRun` the
  moment it completes;
* ``keep_runs=False`` — drop full :class:`~repro.vm.kernel.RunResult`
  objects (and their traces) after the callback, so a million-run worker
  stays at constant memory.

:class:`RunSummary` is the compact, JSON-serializable projection of a run
that crosses process boundaries: status, decisions, failure signature,
and optional per-arc coverage hits — everything the orchestrator needs,
nothing the pickle layer would choke on.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.vm.kernel import Kernel, RunResult, RunStatus
from repro.vm.pct import PCTScheduler
from repro.vm.scheduler import (
    FifoScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    Scheduler,
)

__all__ = [
    "ExplorationRun",
    "ExplorationResult",
    "RunSummary",
    "explore_systematic",
    "explore_random",
    "explore_pct",
    "wilson_interval",
]

#: Builds a fresh kernel (components + threads registered) around the
#: scheduler the explorer supplies.  Must not run it.
ProgramFactory = Callable[[Scheduler], Kernel]

#: Runs a kernel to completion and returns its result.  The default is
#: ``Kernel.run``; the engine's workers substitute a wall-clock-bounded
#: runner that returns a TIMEOUT result instead of hanging forever.
KernelRunner = Callable[[Kernel], RunResult]


def _default_runner(kernel: Kernel) -> RunResult:
    return kernel.run()


def _resolve_runner(
    factory: ProgramFactory, runner: Optional[KernelRunner]
) -> KernelRunner:
    """Pick the runner for a factory: an explicit ``runner`` wins, then a
    ``runner`` attribute the factory carries (this is how passing a
    :class:`repro.run.executor.RunExecutor` as the factory gives every
    explorer its timeout/metrics-matched runner), then ``Kernel.run``."""
    if runner is not None:
        return runner
    attached = getattr(factory, "runner", None)
    if callable(attached):
        return attached
    return _default_runner


def wilson_interval(failures: int, n: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion ``failures / n``.

    Unlike the normal (Wald) approximation, the Wilson interval is always
    inside [0, 1] and stays informative at small ``n`` and extreme
    proportions — exactly the regime of short exploration campaigns:
    0 failures in 60 schedules still admits a true failure rate of up to
    ~6% at 95% confidence, the quantitative reason the paper prefers
    deterministic sequences to "run it many times and hope".

    Returns ``(0.0, 1.0)`` for ``n == 0`` (no data, no information).
    """
    if n <= 0:
        return (0.0, 1.0)
    p = failures / n
    denominator = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denominator
    margin = (
        z
        * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5)
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


@dataclass(frozen=True)
class RunSummary:
    """The compact, serializable projection of one explored schedule.

    This is the shared currency between the in-process explorer and the
    multiprocess campaign engine: small enough to stream through a queue
    and journal to disk, complete enough to reproduce the run (``seed``
    for random/PCT modes, ``decisions`` for exact decision-index replay
    via :class:`~repro.vm.scheduler.ReplayScheduler`).
    """

    index: int
    status: str
    decisions: Tuple[int, ...]
    prefix: Tuple[int, ...] = ()
    seed: Optional[int] = None
    steps: int = 0
    stuck_threads: Tuple[str, ...] = ()
    crashed: Tuple[str, ...] = ()
    #: per-arc coverage hits as ``(method, src, dst, count)`` rows
    #: (empty unless the producer tracked coverage).
    arc_hits: Tuple[Tuple[str, str, str, int], ...] = ()
    #: streaming-detection summary as a plain dict (see
    #: :meth:`repro.detect.DetectionSummary.to_dict`); None unless the
    #: producer ran a detector pipeline.
    detection: Optional[Dict[str, Any]] = None
    #: per-run metrics snapshot as a plain dict (see
    #: :meth:`repro.obs.MetricsSnapshot.to_dict`); None unless the
    #: producer ran with instrumentation attached.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == RunStatus.COMPLETED.value and not self.crashed

    @property
    def detected_classes(self) -> Tuple[str, ...]:
        """Failure-class codes the detector pipeline implicated (empty
        when the run was not detected on, or came up clean)."""
        if not self.detection:
            return ()
        return tuple(self.detection.get("classes", ()))

    @property
    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """Coarse outcome signature: status plus sorted stuck threads."""
        return (self.status, tuple(sorted(self.stuck_threads)))

    @property
    def schedule_key(self) -> str:
        """Stable hash of the decision sequence — the dedupe key for
        identical schedules reached from different shards/seeds."""
        raw = ",".join(str(d) for d in self.decisions)
        return hashlib.sha1(raw.encode()).hexdigest()

    @classmethod
    def from_result(
        cls,
        index: int,
        result: RunResult,
        decisions: Sequence[int],
        prefix: Sequence[int] = (),
        seed: Optional[int] = None,
        arc_hits: Sequence[Tuple[str, str, str, int]] = (),
        detection: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> "RunSummary":
        return cls(
            index=index,
            status=result.status.value,
            decisions=tuple(decisions),
            prefix=tuple(prefix),
            seed=seed,
            steps=result.steps,
            stuck_threads=tuple(sorted(result.stuck_threads)),
            crashed=tuple(sorted(result.crashed)),
            arc_hits=tuple(tuple(row) for row in arc_hits),
            detection=detection,
            metrics=metrics,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "index": self.index,
            "status": self.status,
            "decisions": list(self.decisions),
            "steps": self.steps,
        }
        if self.prefix:
            payload["prefix"] = list(self.prefix)
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.stuck_threads:
            payload["stuck"] = list(self.stuck_threads)
        if self.crashed:
            payload["crashed"] = list(self.crashed)
        if self.arc_hits:
            payload["arc_hits"] = [list(row) for row in self.arc_hits]
        if self.detection is not None:
            payload["detection"] = self.detection
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSummary":
        return cls(
            index=int(payload["index"]),
            status=str(payload["status"]),
            decisions=tuple(int(d) for d in payload.get("decisions", ())),
            prefix=tuple(int(d) for d in payload.get("prefix", ())),
            seed=payload.get("seed"),
            steps=int(payload.get("steps", 0)),
            stuck_threads=tuple(payload.get("stuck", ())),
            crashed=tuple(payload.get("crashed", ())),
            arc_hits=tuple(
                (str(m), str(s), str(d), int(n))
                for m, s, d, n in payload.get("arc_hits", ())
            ),
            detection=payload.get("detection"),
            metrics=payload.get("metrics"),
        )


@dataclass(frozen=True)
class ExplorationRun:
    """One explored schedule."""

    index: int
    prefix: Tuple[int, ...]
    decisions: Tuple[int, ...]
    result: RunResult
    seed: Optional[int] = None

    @property
    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """A coarse outcome signature: status plus sorted stuck threads —
        used to count *distinct* failures across schedules."""
        return (self.result.status.value, tuple(sorted(self.result.stuck_threads)))

    @property
    def failed(self) -> bool:
        return self.result.status is not RunStatus.COMPLETED or bool(
            self.result.crashed
        )

    def summary(
        self,
        arc_hits: Sequence[Tuple[str, str, str, int]] = (),
        detection: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> RunSummary:
        """The compact serializable projection of this run."""
        return RunSummary.from_result(
            self.index,
            self.result,
            self.decisions,
            prefix=self.prefix,
            seed=self.seed,
            arc_hits=arc_hits,
            detection=detection,
            metrics=metrics,
        )


@dataclass
class ExplorationResult:
    """Aggregate of an exploration campaign."""

    runs: List[ExplorationRun] = field(default_factory=list)
    exhausted: bool = False  # True when the whole tree was enumerated
    n_executed: int = 0  # runs executed, even when ``keep_runs=False``
    #: decision prefixes still unexplored when a systematic enumeration
    #: hit ``max_runs`` (explorer stack order: last entry pops next).
    #: Subtrees under distinct pending prefixes are disjoint — the
    #: campaign engine's shard planner partitions exactly this list.
    pending: List[Tuple[int, ...]] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def statuses(self) -> Counter:
        return Counter(run.result.status for run in self.runs)

    def failures(self) -> List[ExplorationRun]:
        """Runs that did not complete cleanly."""
        return [run for run in self.runs if run.failed]

    def distinct_failure_signatures(self) -> List[Tuple[str, Tuple[str, ...]]]:
        seen: Dict[Tuple[str, Tuple[str, ...]], None] = {}
        for run in self.failures():
            seen.setdefault(run.signature)
        return list(seen)

    def first_failure_index(self) -> Optional[int]:
        """1-based index of the first failing schedule, or None."""
        for i, run in enumerate(self.runs):
            if run.failed:
                return i + 1
        return None

    def failure_rate(self) -> float:
        """Observed fraction of failing schedules."""
        if not self.runs:
            return 0.0
        return len(self.failures()) / len(self.runs)

    def failure_rate_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the per-schedule failure probability
        (see :func:`wilson_interval` for why Wilson and not the normal
        approximation)."""
        return wilson_interval(len(self.failures()), len(self.runs), z)

    def describe(self) -> str:
        status_counts = ", ".join(
            f"{status.value}: {count}" for status, count in self.statuses().items()
        )
        lines = [
            f"explored {self.n_runs} schedules"
            + (" (exhaustive)" if self.exhausted else ""),
            f"  outcomes: {status_counts}",
        ]
        first = self.first_failure_index()
        if first is not None:
            lines.append(f"  first failure at schedule #{first}")
        return "\n".join(lines)


def _record(
    result: ExplorationResult,
    run: ExplorationRun,
    on_run: Optional[Callable[[ExplorationRun], None]],
    keep_runs: bool,
) -> None:
    result.n_executed += 1
    if on_run is not None:
        on_run(run)
    if keep_runs:
        result.runs.append(run)


def explore_systematic(
    factory: ProgramFactory,
    max_runs: int = 500,
    max_depth: int = 400,
    stop_on_failure: bool = False,
    branch: str = "shallow",
    roots: Optional[Sequence[Sequence[int]]] = None,
    on_run: Optional[Callable[[ExplorationRun], None]] = None,
    keep_runs: bool = True,
    runner: Optional[KernelRunner] = None,
) -> ExplorationResult:
    """Systematic enumeration of the schedule tree.

    Every run replays an untried decision prefix and fills the suffix with
    FIFO; each decision recorded past the prefix spawns sibling prefixes
    for its untried alternatives, so the full tree is enumerated without
    duplicates (up to ``max_runs``; branch points past ``max_depth`` are
    not expanded).

    ``branch="shallow"`` (default) explores flips of *early* decisions
    first — concurrency bugs usually hinge on an early divergence (who
    takes the first lock), so this exposes them in few runs.
    ``branch="deep"`` gives classic last-decision-first DFS, which keeps
    the pending-prefix stack small on huge trees.

    ``roots`` restricts the enumeration to the subtrees under the given
    decision prefixes (default: the whole tree, ``[[]]``).  The campaign
    engine partitions a DFS frontier into disjoint root sets, so workers
    enumerate disjoint subtrees with no cross-process coordination.
    """
    if branch not in ("shallow", "deep"):
        raise ValueError(f"branch must be 'shallow' or 'deep', got {branch!r}")
    runner = _resolve_runner(factory, runner)
    result = ExplorationResult()
    stack: List[List[int]] = (
        [list(root) for root in reversed(list(roots))] if roots is not None else [[]]
    )
    while stack and result.n_executed < max_runs:
        prefix = stack.pop()
        recorder = RecordingScheduler(
            ReplayScheduler(prefix, fallback=FifoScheduler())
        )
        kernel = factory(recorder)
        run_result = runner(kernel)
        decisions = recorder.log
        run = ExplorationRun(
            index=result.n_executed,
            prefix=tuple(prefix),
            decisions=tuple(d.chosen for d in decisions),
            result=run_result,
        )
        failed = run.failed
        _record(result, run, on_run, keep_runs)
        if stop_on_failure and failed:
            result.pending = [tuple(p) for p in stack]
            return result
        # Branch on every untried alternative strictly after the prefix.
        # The stack pops last-pushed first, so pushing deep-to-shallow
        # explores shallow flips first (and vice versa).
        positions = range(len(prefix), min(len(decisions), max_depth))
        ordered = reversed(positions) if branch == "shallow" else positions
        for i in ordered:
            decision = decisions[i]
            for alternative in range(decision.chosen + 1, len(decision.options)):
                stack.append([d.chosen for d in decisions[:i]] + [alternative])
    result.exhausted = not stack
    result.pending = [tuple(p) for p in stack]
    return result


def _explore_seeded(
    factory: ProgramFactory,
    seeds: Sequence[int],
    make_scheduler: Callable[[int], Scheduler],
    stop_on_failure: bool,
    on_run: Optional[Callable[[ExplorationRun], None]],
    keep_runs: bool,
    runner: Optional[KernelRunner],
) -> ExplorationResult:
    runner = _resolve_runner(factory, runner)
    result = ExplorationResult()
    for seed in seeds:
        recorder = RecordingScheduler(make_scheduler(seed))
        kernel = factory(recorder)
        run_result = runner(kernel)
        run = ExplorationRun(
            index=result.n_executed,
            prefix=(),
            decisions=tuple(d.chosen for d in recorder.log),
            result=run_result,
            seed=seed,
        )
        failed = run.failed
        _record(result, run, on_run, keep_runs)
        if stop_on_failure and failed:
            break
    return result


def explore_random(
    factory: ProgramFactory,
    seeds: Sequence[int],
    stop_on_failure: bool = False,
    on_run: Optional[Callable[[ExplorationRun], None]] = None,
    keep_runs: bool = True,
    runner: Optional[KernelRunner] = None,
) -> ExplorationResult:
    """One run per seed under uniform random scheduling."""
    return _explore_seeded(
        factory,
        seeds,
        lambda seed: RandomScheduler(seed),
        stop_on_failure,
        on_run,
        keep_runs,
        runner,
    )


def explore_pct(
    factory: ProgramFactory,
    seeds: Sequence[int],
    depth: int = 3,
    expected_steps: int = 200,
    stop_on_failure: bool = False,
    on_run: Optional[Callable[[ExplorationRun], None]] = None,
    keep_runs: bool = True,
    runner: Optional[KernelRunner] = None,
) -> ExplorationResult:
    """One PCT trial per seed (random priorities, ``depth-1`` demotion
    points drawn over ``expected_steps``; see :mod:`repro.vm.pct`)."""
    return _explore_seeded(
        factory,
        seeds,
        lambda seed: PCTScheduler(
            seed=seed, depth=depth, expected_steps=expected_steps
        ),
        stop_on_failure,
        on_run,
        keep_runs,
        runner,
    )


def explore_for_coverage(
    factory: ProgramFactory,
    cofgs: dict,
    max_runs: int = 200,
    seed_start: int = 0,
):
    """Run random schedules until the union CoFG arc coverage is complete
    (or ``max_runs`` is reached).

    Returns ``(matrix, runs_used)`` where ``matrix`` is a
    :class:`repro.coverage.matrix.CoverageMatrix` holding one row per
    executed schedule — the saturation curve of the Ext-B study, as a
    reusable primitive.  This is the undirected baseline the paper's
    *directed* covering sequences beat: the matrix records exactly how
    many repetitions the rare (loop) arcs cost.
    """
    from repro.coverage.matrix import CoverageMatrix
    from repro.coverage.tracker import CoverageTracker

    matrix = CoverageMatrix(cofgs)
    for offset in range(max_runs):
        seed = seed_start + offset
        kernel = factory(RandomScheduler(seed))
        result = kernel.run()
        tracker = CoverageTracker(cofgs)
        tracker.feed(result.trace)
        matrix.add_run(tracker, label=f"seed{seed}")
        if matrix.runs_to_full_coverage() is not None:
            break
    return matrix, len(matrix.rows)
