"""Schedule exploration: systematic DFS and random fuzzing.

The VM funnels every nondeterministic choice through ``Scheduler.pick``,
so exploring schedules is exploring a decision tree:

* :func:`explore_systematic` — stateless depth-first enumeration: replay a
  decision prefix, let FIFO fill the suffix, record every decision made,
  then branch on untried alternatives (deepest first).  Exhaustive up to
  ``max_depth`` decisions, bounded by ``max_runs``.
* :func:`explore_random` — Stoller-style randomized scheduling, one run
  per seed (the reproducible stand-in for rerunning on a real JVM).

Both return :class:`ExplorationResult`, which aggregates statuses,
failure signatures, and optionally CoFG coverage saturation — the data of
the Ext-B study (how many schedules until all arcs are covered / the
seeded bug is exposed?).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.vm.kernel import Kernel, RunResult, RunStatus
from repro.vm.scheduler import (
    FifoScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    Scheduler,
)

__all__ = ["ExplorationRun", "ExplorationResult", "explore_systematic", "explore_random"]

#: Builds a fresh kernel (components + threads registered) around the
#: scheduler the explorer supplies.  Must not run it.
ProgramFactory = Callable[[Scheduler], Kernel]


@dataclass(frozen=True)
class ExplorationRun:
    """One explored schedule."""

    index: int
    prefix: Tuple[int, ...]
    decisions: Tuple[int, ...]
    result: RunResult

    @property
    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """A coarse outcome signature: status plus sorted stuck threads —
        used to count *distinct* failures across schedules."""
        return (self.result.status.value, tuple(sorted(self.result.stuck_threads)))


@dataclass
class ExplorationResult:
    """Aggregate of an exploration campaign."""

    runs: List[ExplorationRun] = field(default_factory=list)
    exhausted: bool = False  # True when the whole tree was enumerated

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def statuses(self) -> Counter:
        return Counter(run.result.status for run in self.runs)

    def failures(self) -> List[ExplorationRun]:
        """Runs that did not complete cleanly."""
        return [
            run
            for run in self.runs
            if run.result.status is not RunStatus.COMPLETED or run.result.crashed
        ]

    def distinct_failure_signatures(self) -> List[Tuple[str, Tuple[str, ...]]]:
        seen: Dict[Tuple[str, Tuple[str, ...]], None] = {}
        for run in self.failures():
            seen.setdefault(run.signature)
        return list(seen)

    def first_failure_index(self) -> Optional[int]:
        """1-based index of the first failing schedule, or None."""
        for i, run in enumerate(self.runs):
            if run.result.status is not RunStatus.COMPLETED or run.result.crashed:
                return i + 1
        return None

    def failure_rate(self) -> float:
        """Observed fraction of failing schedules."""
        if not self.runs:
            return 0.0
        return len(self.failures()) / len(self.runs)

    def failure_rate_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the per-schedule failure probability.

        For random exploration this bounds the bug-manifestation
        probability the sample supports; e.g. 0 failures in 60 schedules
        still admits a true rate of up to ~6% at 95% confidence — the
        quantitative reason the paper prefers deterministic sequences to
        "run it many times and hope".
        """
        n = len(self.runs)
        if n == 0:
            return (0.0, 1.0)
        p = self.failure_rate()
        denominator = 1 + z * z / n
        centre = (p + z * z / (2 * n)) / denominator
        margin = (
            z
            * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5)
            / denominator
        )
        return (max(0.0, centre - margin), min(1.0, centre + margin))

    def describe(self) -> str:
        status_counts = ", ".join(
            f"{status.value}: {count}" for status, count in self.statuses().items()
        )
        lines = [
            f"explored {self.n_runs} schedules"
            + (" (exhaustive)" if self.exhausted else ""),
            f"  outcomes: {status_counts}",
        ]
        first = self.first_failure_index()
        if first is not None:
            lines.append(f"  first failure at schedule #{first}")
        return "\n".join(lines)


def explore_systematic(
    factory: ProgramFactory,
    max_runs: int = 500,
    max_depth: int = 400,
    stop_on_failure: bool = False,
    branch: str = "shallow",
) -> ExplorationResult:
    """Systematic enumeration of the schedule tree.

    Every run replays an untried decision prefix and fills the suffix with
    FIFO; each decision recorded past the prefix spawns sibling prefixes
    for its untried alternatives, so the full tree is enumerated without
    duplicates (up to ``max_runs``; branch points past ``max_depth`` are
    not expanded).

    ``branch="shallow"`` (default) explores flips of *early* decisions
    first — concurrency bugs usually hinge on an early divergence (who
    takes the first lock), so this exposes them in few runs.
    ``branch="deep"`` gives classic last-decision-first DFS, which keeps
    the pending-prefix stack small on huge trees.
    """
    if branch not in ("shallow", "deep"):
        raise ValueError(f"branch must be 'shallow' or 'deep', got {branch!r}")
    result = ExplorationResult()
    stack: List[List[int]] = [[]]
    while stack and len(result.runs) < max_runs:
        prefix = stack.pop()
        recorder = RecordingScheduler(
            ReplayScheduler(prefix, fallback=FifoScheduler())
        )
        kernel = factory(recorder)
        run_result = kernel.run()
        decisions = recorder.log
        run = ExplorationRun(
            index=len(result.runs),
            prefix=tuple(prefix),
            decisions=tuple(d.chosen for d in decisions),
            result=run_result,
        )
        result.runs.append(run)
        if stop_on_failure and (
            run_result.status is not RunStatus.COMPLETED or run_result.crashed
        ):
            return result
        # Branch on every untried alternative strictly after the prefix.
        # The stack pops last-pushed first, so pushing deep-to-shallow
        # explores shallow flips first (and vice versa).
        positions = range(len(prefix), min(len(decisions), max_depth))
        ordered = reversed(positions) if branch == "shallow" else positions
        for i in ordered:
            decision = decisions[i]
            for alternative in range(decision.chosen + 1, len(decision.options)):
                stack.append([d.chosen for d in decisions[:i]] + [alternative])
    result.exhausted = not stack
    return result


def explore_random(
    factory: ProgramFactory,
    seeds: Sequence[int],
    stop_on_failure: bool = False,
) -> ExplorationResult:
    """One run per seed under uniform random scheduling."""
    result = ExplorationResult()
    for seed in seeds:
        recorder = RecordingScheduler(RandomScheduler(seed))
        kernel = factory(recorder)
        run_result = kernel.run()
        run = ExplorationRun(
            index=len(result.runs),
            prefix=(),
            decisions=tuple(d.chosen for d in recorder.log),
            result=run_result,
        )
        result.runs.append(run)
        if stop_on_failure and (
            run_result.status is not RunStatus.COMPLETED or run_result.crashed
        ):
            break
    return result


def explore_for_coverage(
    factory: ProgramFactory,
    cofgs: dict,
    max_runs: int = 200,
    seed_start: int = 0,
):
    """Run random schedules until the union CoFG arc coverage is complete
    (or ``max_runs`` is reached).

    Returns ``(matrix, runs_used)`` where ``matrix`` is a
    :class:`repro.coverage.matrix.CoverageMatrix` holding one row per
    executed schedule — the saturation curve of the Ext-B study, as a
    reusable primitive.  This is the undirected baseline the paper's
    *directed* covering sequences beat: the matrix records exactly how
    many repetitions the rare (loop) arcs cost.
    """
    from repro.coverage.matrix import CoverageMatrix
    from repro.coverage.tracker import CoverageTracker

    matrix = CoverageMatrix(cofgs)
    for offset in range(max_runs):
        seed = seed_start + offset
        kernel = factory(RandomScheduler(seed))
        result = kernel.run()
        tracker = CoverageTracker(cofgs)
        tracker.feed(result.trace)
        matrix.add_run(tracker, label=f"seed{seed}")
        if matrix.runs_to_full_coverage() is not None:
            break
    return matrix, len(matrix.rows)
