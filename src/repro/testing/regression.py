"""Regression-suite management: build, save, load, re-run golden suites.

The full loop of the paper's method, packaged: a *suite* is a set of
clocked test sequences for one component (typically one covering sequence
plus targeted scenarios), each annotated with golden completion times and
return values from a trusted run.  Suites serialize to JSON (and to the
ConAn-style script text), so they live in the repository next to the
component and re-run on every change::

    suite = RegressionSuite.build(
        ProducerConsumer,
        sequences=[covering_sequence()],
    )
    suite.save("pc_suite.json")
    ...
    report = RegressionSuite.load("pc_suite.json").run(ProducerConsumer)
    assert report.passed
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.detect.completion import UNSET
from repro.vm.api import MonitorComponent

from .driver import SequenceOutcome, SequenceRunner
from .generator import annotate_expectations
from .sequence import TestCall, TestSequence

__all__ = ["SuiteReport", "RegressionSuite"]

_FORMAT_VERSION = 1


def _call_to_dict(call: TestCall) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "at": call.at,
        "thread": call.thread,
        "method": call.method,
    }
    if call.args:
        payload["args"] = list(call.args)
    if call.kwargs:
        payload["kwargs"] = dict(call.kwargs)
    if call.expect_at is not None:
        payload["expect_at"] = call.expect_at
    if call.expect_between is not None:
        payload["expect_between"] = list(call.expect_between)
    if call.expect_never:
        payload["expect_never"] = True
    if call.expect_returns is not UNSET:
        payload["expect_returns"] = call.expect_returns
    if not call.check_completion:
        payload["check_completion"] = False
    return payload


def _call_from_dict(payload: Dict[str, Any]) -> TestCall:
    return TestCall(
        at=int(payload["at"]),
        thread=str(payload["thread"]),
        method=str(payload["method"]),
        args=tuple(payload.get("args", ())),
        kwargs=tuple(sorted(dict(payload.get("kwargs", {})).items())),
        expect_at=payload.get("expect_at"),
        expect_between=(
            tuple(payload["expect_between"])
            if "expect_between" in payload
            else None
        ),
        expect_never=bool(payload.get("expect_never", False)),
        expect_returns=payload.get("expect_returns", UNSET),
        check_completion=bool(payload.get("check_completion", True)),
    )


@dataclass
class SuiteReport:
    """The result of running a regression suite."""

    component: str
    outcomes: List[SequenceOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def n_sequences(self) -> int:
        return len(self.outcomes)

    def failures(self) -> List[SequenceOutcome]:
        return [o for o in self.outcomes if not o.passed]

    def total_coverage(self) -> float:
        """Union arc coverage across the suite's sequences (fraction)."""
        covered: set = set()
        total: set = set()
        for outcome in self.outcomes:
            for method, coverage in outcome.coverage.methods.items():
                for key, hits in coverage.hits.items():
                    total.add((method, key))
                    if hits > 0:
                        covered.add((method, key))
        return len(covered) / len(total) if total else 1.0

    def describe(self) -> str:
        lines = [
            f"regression suite for {self.component}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({self.n_sequences} sequences, "
            f"{self.total_coverage():.0%} union arc coverage)"
        ]
        for outcome in self.outcomes:
            lines.append("  " + outcome.describe().splitlines()[0])
            for violation in outcome.violations:
                lines.append(f"      {violation}")
        return "\n".join(lines)


@dataclass
class RegressionSuite:
    """A serializable set of golden test sequences for one component."""

    component_name: str
    sequences: List[TestSequence] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        component_factory: Callable[[], MonitorComponent],
        sequences: Sequence[TestSequence],
        runner: Optional[SequenceRunner] = None,
        expect_returns: bool = True,
    ) -> "RegressionSuite":
        """Run each (unannotated) sequence on the trusted component and
        freeze the observed behaviour as the suite's golden expectations.

        Raises ``ValueError`` when a golden replay does not pass its own
        annotations (a nondeterministic sequence is not a regression
        test).
        """
        runner = runner or SequenceRunner(component_factory)
        first = component_factory()
        name = type(first).__name__
        golden_sequences: List[TestSequence] = []
        for sequence in sequences:
            outcome = runner.run(sequence)
            golden = annotate_expectations(outcome, expect_returns=expect_returns)
            verify = runner.run(golden)
            if not verify.passed:
                raise ValueError(
                    f"sequence {sequence.name!r} is not stable under its own "
                    f"golden annotations: {[str(v) for v in verify.violations]}"
                )
            golden_sequences.append(golden)
        return cls(component_name=name, sequences=golden_sequences)

    # -- execution --------------------------------------------------------------

    def run(
        self,
        component_factory: Callable[[], MonitorComponent],
        runner: Optional[SequenceRunner] = None,
    ) -> SuiteReport:
        """Run every sequence against ``component_factory``."""
        runner = runner or SequenceRunner(component_factory)
        report = SuiteReport(component=self.component_name)
        for sequence in self.sequences:
            report.outcomes.append(runner.run(sequence))
        return report

    # -- serialization ------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": "repro-suite",
            "version": _FORMAT_VERSION,
            "component": self.component_name,
            "sequences": [
                {
                    "name": sequence.name,
                    "calls": [_call_to_dict(c) for c in sequence.calls],
                }
                for sequence in self.sequences
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "RegressionSuite":
        payload = json.loads(text)
        if payload.get("format") != "repro-suite":
            raise ValueError("not a repro regression suite")
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported suite version {payload.get('version')!r}"
            )
        suite = cls(component_name=payload["component"])
        for sequence_payload in payload["sequences"]:
            sequence = TestSequence(sequence_payload["name"])
            sequence.calls = [
                _call_from_dict(c) for c in sequence_payload["calls"]
            ]
            suite.sequences.append(sequence)
        return suite

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RegressionSuite":
        return cls.from_json(Path(path).read_text())
