"""CoFG-driven test-sequence generation (paper Section 6, automated).

The paper's method asks the tester to construct call sequences that cover
every CoFG arc.  This module automates the construction with a greedy,
VM-in-the-loop search:

1. start from the empty sequence;
2. at each step, try appending each call template from the alphabet at
   the next clock slot (each call on its own thread);
3. run the candidate sequence on a fresh component, measure CoFG arc
   coverage, and keep the candidate that covers the most new arcs;
4. stop at full coverage, at the length budget, or when no candidate
   makes progress for ``patience`` consecutive slots.

Because the evaluation uses the real VM, the generator needs no model of
the component's guards — the component itself decides which regions
execute, exactly as a human tester reasons with the real monitor.

:func:`annotate_expectations` then turns a covering sequence run on a
*correct* component into a regression oracle: observed completion clocks
and return values become the sequence's expectations (Brinch Hansen's
"predicted output"), ready to be replayed against mutants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.vm.api import MonitorComponent

from .driver import SequenceOutcome, SequenceRunner
from .sequence import TestCall, TestSequence

__all__ = ["CallTemplate", "GenerationResult", "generate_covering_sequence", "annotate_expectations"]


@dataclass(frozen=True)
class CallTemplate:
    """One alphabet entry: a method plus an argument factory.

    ``args_factory`` receives the slot index so successive calls can use
    distinct payloads (e.g. ``lambda i: (f"msg{i}",)``).
    """

    method: str
    args_factory: Callable[[int], Tuple[Any, ...]] = lambda i: ()
    label: str = ""

    def display(self) -> str:
        return self.label or self.method


@dataclass
class GenerationResult:
    """Outcome of a generation campaign."""

    sequence: TestSequence
    outcome: SequenceOutcome
    covered: int
    total: int
    evaluations: int
    complete: bool

    def describe(self) -> str:
        return (
            f"generated {len(self.sequence.calls)} calls covering "
            f"{self.covered}/{self.total} arcs "
            f"({'complete' if self.complete else 'incomplete'}, "
            f"{self.evaluations} candidate evaluations)\n"
            + self.sequence.describe()
        )


def _covered_keys(outcome: SequenceOutcome) -> Set[Tuple[str, str, str]]:
    keys: Set[Tuple[str, str, str]] = set()
    for method, coverage in outcome.coverage.methods.items():
        for (src, dst), hits in coverage.hits.items():
            if hits > 0:
                keys.add((method, src, dst))
    return keys


def generate_covering_sequence(
    component_factory: Callable[[], MonitorComponent],
    alphabet: Sequence[CallTemplate],
    max_length: int = 16,
    patience: int = 2,
    runner: Optional[SequenceRunner] = None,
) -> GenerationResult:
    """Greedy construction of an arc-covering test sequence.

    Returns the best sequence found; ``complete`` is True when every CoFG
    arc of the component is covered.
    """
    if not alphabet:
        raise ValueError("alphabet must not be empty")
    runner = runner or SequenceRunner(component_factory)

    calls: List[TestCall] = []
    covered: Set[Tuple[str, str, str]] = set()
    best_outcome: Optional[SequenceOutcome] = None
    evaluations = 0
    stall = 0

    def build(calls_list: List[TestCall]) -> TestSequence:
        sequence = TestSequence("generated")
        sequence.calls = list(calls_list)
        return sequence

    for slot in range(1, max_length + 1):
        best_gain = -1
        best_candidate: Optional[TestCall] = None
        best_candidate_outcome: Optional[SequenceOutcome] = None
        best_covered: Set[Tuple[str, str, str]] = set()
        for template in alphabet:
            candidate = TestCall(
                at=slot,
                thread=f"t{slot}",
                method=template.method,
                args=tuple(template.args_factory(slot)),
                check_completion=False,
            )
            outcome = runner.run(build(calls + [candidate]))
            evaluations += 1
            now_covered = _covered_keys(outcome)
            gain = len(now_covered - covered)
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
                best_candidate_outcome = outcome
                best_covered = now_covered
        assert best_candidate is not None and best_candidate_outcome is not None
        if best_gain <= 0:
            stall += 1
            if stall >= patience:
                break
            # keep the call anyway: it may unblock progress next slot
        else:
            stall = 0
        calls.append(best_candidate)
        covered = best_covered
        best_outcome = best_candidate_outcome
        if best_outcome.coverage.is_complete():
            break

    if best_outcome is None:
        best_outcome = runner.run(build(calls))
    final_sequence = build(calls)
    return GenerationResult(
        sequence=final_sequence,
        outcome=best_outcome,
        covered=best_outcome.coverage.covered_arcs,
        total=best_outcome.coverage.total_arcs,
        evaluations=evaluations,
        complete=best_outcome.coverage.is_complete(),
    )


def annotate_expectations(
    outcome: SequenceOutcome,
    expect_returns: bool = True,
) -> TestSequence:
    """Turn an observed (assumed-correct) run into a regression oracle.

    Every call's expected completion clock is set to the clock at which it
    actually completed; calls that never completed get ``expect_never``.
    Return values become ``expect_returns`` when requested.  Replaying the
    annotated sequence against a mutated component turns any behavioural
    difference into a completion-time or return-value violation.
    """
    trace = outcome.result.trace
    records = [
        r
        for r in trace.call_records()
        if r.component == outcome.coverage.component
    ]
    # Clock value at each kernel time, for completion stamping.
    clock_map = trace.clock_of_time()

    def clock_at(kernel_time: Optional[int]) -> Optional[int]:
        if kernel_time is None:
            return None
        best = 0
        for time, clock in clock_map.items():
            if time <= kernel_time:
                best = max(best, clock)
        return best

    occurrence: Dict[Tuple[str, str], int] = {}
    annotated: List[TestCall] = []
    for call in sorted(
        outcome.sequence.calls, key=lambda c: (c.at, c.thread)
    ):
        key = (call.thread, call.method)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        matching = [
            r
            for r in records
            if r.thread == call.thread and r.method == call.method
        ]
        record = matching[index] if index < len(matching) else None
        if record is None or not record.completed:
            annotated.append(
                replace(call, expect_never=True, check_completion=True)
            )
            continue
        completion_clock = clock_at(record.end_time)
        new_call = replace(
            call,
            expect_at=completion_clock,
            expect_never=False,
            check_completion=True,
        )
        if expect_returns:
            new_call = replace(new_call, expect_returns=record.result)
        annotated.append(new_call)
    regression = TestSequence(outcome.sequence.name + "-annotated")
    regression.calls = annotated
    return regression
