"""Deterministic test sequences (the ConAn method of refs [19, 20]).

A :class:`TestSequence` is the executable form of Brinch Hansen's step 2
(*"the tester constructs a sequence of monitor calls that will exercise
each operation under each of its preconditions"*): a list of
:class:`TestCall` items, each saying *which thread* makes *which call* at
*which abstract-clock time*, together with the expected completion time
and return value.

Semantics (matching the paper's Section 5 description of the clock):

* a call with ``at=t`` starts when the clock reaches ``t``;
* the clock only advances when no thread can run (so everything scheduled
  at time ``t`` runs to completion-or-blocking before time ``t+1``);
* a call that must be released by a later call (e.g. ``receive`` on an
  empty buffer released by a ``send`` at time ``u``) is expected to
  complete at clock ``u``;
* ``expect_never=True`` states the call must still be incomplete when the
  sequence ends (the FF-class outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.detect.completion import Expectation, UNSET

__all__ = ["TestCall", "TestSequence"]

_UNSET = UNSET


@dataclass(frozen=True)
class TestCall:
    """One clocked call in a test sequence.

    Attributes:
        at: abstract-clock time at which the call starts.
        thread: logical thread name making the call.
        method: component method name.
        args / kwargs: call arguments.
        expect_at: expected completion clock time (defaults to ``at`` —
            i.e. "completes without being blocked" — when neither
            ``expect_at``, ``expect_between`` nor ``expect_never`` is
            given and ``check_completion`` is True).
        expect_between: inclusive completion window, overrides expect_at.
        expect_never: the call must not complete within the sequence.
        expect_returns: expected return value (checked when set).
        check_completion: disable all completion checking for this call.
    """

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    at: int
    thread: str
    method: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    expect_at: Optional[int] = None
    expect_between: Optional[Tuple[int, int]] = None
    expect_never: bool = False
    expect_returns: Any = _UNSET
    check_completion: bool = True

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def describe(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        expect = ""
        if self.expect_never:
            expect = " !never"
        elif self.expect_between is not None:
            expect = f" @[{self.expect_between[0]},{self.expect_between[1]}]"
        elif self.expect_at is not None:
            expect = f" @{self.expect_at}"
        return f"t={self.at} {self.thread}: {self.method}({args}){expect}"


@dataclass
class TestSequence:
    """An ordered collection of clocked calls against one component."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    name: str
    calls: List[TestCall] = field(default_factory=list)

    def add(
        self,
        at: int,
        thread: str,
        method: str,
        *args: Any,
        expect_at: Optional[int] = None,
        expect_between: Optional[Tuple[int, int]] = None,
        expect_never: bool = False,
        expect_returns: Any = _UNSET,
        check_completion: bool = True,
        **kwargs: Any,
    ) -> "TestSequence":
        """Append a call (chainable)."""
        self.calls.append(
            TestCall(
                at=at,
                thread=thread,
                method=method,
                args=tuple(args),
                kwargs=tuple(sorted(kwargs.items())),
                expect_at=expect_at,
                expect_between=expect_between,
                expect_never=expect_never,
                expect_returns=expect_returns,
                check_completion=check_completion,
            )
        )
        return self

    def threads(self) -> List[str]:
        """Distinct thread names in first-appearance order."""
        seen: Dict[str, None] = {}
        for call in self.calls:
            seen.setdefault(call.thread)
        return list(seen)

    def horizon(self) -> int:
        """The largest clock time mentioned anywhere in the sequence."""
        times = [c.at for c in self.calls]
        times += [c.expect_at for c in self.calls if c.expect_at is not None]
        times += [c.expect_between[1] for c in self.calls if c.expect_between]
        return max(times, default=0)

    def calls_for(self, thread: str) -> List[TestCall]:
        """The calls of one thread, in clock order (stable for ties)."""
        return sorted(
            (c for c in self.calls if c.thread == thread), key=lambda c: c.at
        )

    def expectations(self, component_name: str) -> List[Expectation]:
        """Completion-time expectations for the checker.

        Occurrence indices are computed per (thread, method) in clock
        order, matching how the driver emits the calls.
        """
        expectations: List[Expectation] = []
        occurrence: Dict[Tuple[str, str], int] = {}
        for thread in self.threads():
            for call in self.calls_for(thread):
                key = (thread, call.method)
                index = occurrence.get(key, 0)
                occurrence[key] = index + 1
                if not call.check_completion:
                    continue
                window: Optional[Tuple[int, int]] = call.expect_between
                at: Optional[int] = call.expect_at
                if window is None and at is None and not call.expect_never:
                    at = call.at
                expectations.append(
                    Expectation(
                        component=component_name,
                        method=call.method,
                        thread=thread,
                        occurrence=index,
                        at=at,
                        between=window,
                        never=call.expect_never,
                        returns=call.expect_returns,
                    )
                )
        return expectations

    def describe(self) -> str:
        lines = [f"test sequence {self.name!r}:"]
        for call in sorted(self.calls, key=lambda c: (c.at, c.thread)):
            lines.append(f"  {call.describe()}")
        return "\n".join(lines)
