"""A ConAn-style textual test-script format.

The paper's tooling lineage (Long/Hoffman/Strooper's ConAn, refs [19,20])
drives monitor tests from scripts: threads making clocked calls with
expected results.  This module provides that front end for the
reproduction's driver::

    # producer-consumer regression
    component repro.components:ProducerConsumer

    thread consumer:
        @1 receive() -> 'a' @2      # starts at tick 1, returns 'a' at tick 2
        @3 receive() -> 'b' @3
        @5 receive() @never         # must still be waiting at the end

    thread producer:
        @2 send("ab") @2
        @4 size?                    # bare call, no completion check

Grammar (per call line):

    "@" START METHOD "(" ARGS ")" ["->" LITERAL] [COMPLETION]
    COMPLETION := "@" INT | "@[" INT "," INT "]" | "@never"

* START is the abstract-clock tick at which the call begins;
* ARGS are Python literals (``ast.literal_eval``);
* ``-> LITERAL`` states the expected return value;
* a trailing ``@t`` / ``@[lo,hi]`` states the completion tick (defaults
  to the start tick — "completes without blocking");
* ``@never`` states the call must not complete;
* a ``?`` suffix on the method (``size?``) disables completion checking.

``component`` names the class under test as ``module:ClassName``
(with optional ``(args)`` for its constructor).
"""

from __future__ import annotations

import ast
import importlib
import re
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.detect.completion import UNSET
from repro.vm.api import MonitorComponent

from .driver import SequenceOutcome, SequenceRunner
from .sequence import TestSequence

__all__ = [
    "ScriptError",
    "ParsedScript",
    "parse_script",
    "run_script",
    "render_script",
]


class ScriptError(ValueError):
    """A syntax or semantic error in a test script, with line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class ParsedScript:
    """A parsed script: the component factory plus the test sequence."""

    component_factory: Callable[[], MonitorComponent]
    component_name: str
    sequence: TestSequence

    def run(self, **runner_kwargs: Any) -> SequenceOutcome:
        """Execute the script with :class:`SequenceRunner`."""
        runner = SequenceRunner(self.component_factory, **runner_kwargs)
        return runner.run(self.sequence)


_COMPONENT_RE = re.compile(
    r"^component\s+(?P<module>[\w.]+):(?P<cls>\w+)(?:\((?P<args>.*)\))?\s*$"
)
_THREAD_RE = re.compile(r"^thread\s+(?P<name>[\w-]+)\s*:\s*$")
_CALL_RE = re.compile(
    r"^@(?P<at>\d+)\s+(?P<method>\w+)(?P<nocheck>\?)?"
    r"(?:\((?P<args>.*)\))?"
    r"(?:\s*->\s*(?P<returns>.+?))?"
    r"(?:\s+@(?P<completion>never|\d+|\[\s*\d+\s*,\s*\d+\s*\]))?\s*$"
)


def _strip_comment(line: str) -> str:
    """Remove a trailing ``#`` comment (respecting string literals)."""
    in_string: Optional[str] = None
    for i, ch in enumerate(line):
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == "#":
            return line[:i]
    return line


def _parse_literals(text: str, line_number: int) -> Tuple[Any, ...]:
    text = text.strip()
    if not text:
        return ()
    try:
        value = ast.literal_eval(f"({text},)")
    except (SyntaxError, ValueError) as exc:
        raise ScriptError(line_number, f"bad argument list {text!r}: {exc}")
    return tuple(value)


def parse_script(text: str, name: str = "script") -> ParsedScript:
    """Parse a test script into a component factory and sequence."""
    factory: Optional[Callable[[], MonitorComponent]] = None
    component_name = ""
    sequence = TestSequence(name)
    current_thread: Optional[str] = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue

        component_match = _COMPONENT_RE.match(line)
        if component_match:
            if factory is not None:
                raise ScriptError(line_number, "duplicate component line")
            module_name = component_match.group("module")
            class_name = component_match.group("cls")
            ctor_args = _parse_literals(
                component_match.group("args") or "", line_number
            )
            try:
                module = importlib.import_module(module_name)
                cls = getattr(module, class_name)
            except (ImportError, AttributeError) as exc:
                raise ScriptError(line_number, f"cannot resolve component: {exc}")
            factory = lambda: cls(*ctor_args)  # noqa: E731
            component_name = class_name
            continue

        thread_match = _THREAD_RE.match(line)
        if thread_match:
            current_thread = thread_match.group("name")
            continue

        call_match = _CALL_RE.match(line)
        if call_match:
            if current_thread is None:
                raise ScriptError(line_number, "call outside a thread block")
            if factory is None:
                raise ScriptError(line_number, "call before the component line")
            at = int(call_match.group("at"))
            method = call_match.group("method")
            args = _parse_literals(call_match.group("args") or "", line_number)
            check = call_match.group("nocheck") is None

            returns: Any = UNSET
            returns_text = call_match.group("returns")
            if returns_text is not None:
                try:
                    returns = ast.literal_eval(returns_text.strip())
                except (SyntaxError, ValueError) as exc:
                    raise ScriptError(
                        line_number, f"bad expected value {returns_text!r}: {exc}"
                    )

            expect_at: Optional[int] = None
            expect_between: Optional[Tuple[int, int]] = None
            expect_never = False
            completion = call_match.group("completion")
            if completion == "never":
                expect_never = True
            elif completion is not None and completion.startswith("["):
                lo, hi = (int(x) for x in completion[1:-1].split(","))
                if lo > hi:
                    raise ScriptError(line_number, f"empty window [{lo},{hi}]")
                expect_between = (lo, hi)
            elif completion is not None:
                expect_at = int(completion)

            if not check and (
                expect_at is not None or expect_between or expect_never
                or returns is not UNSET
            ):
                raise ScriptError(
                    line_number,
                    "'?' (unchecked) cannot be combined with expectations",
                )

            sequence.add(
                at,
                current_thread,
                method,
                *args,
                expect_at=expect_at,
                expect_between=expect_between,
                expect_never=expect_never,
                expect_returns=returns,
                check_completion=check,
            )
            continue

        raise ScriptError(line_number, f"cannot parse: {raw_line.strip()!r}")

    if factory is None:
        raise ScriptError(0, "script has no component line")
    if not sequence.calls:
        raise ScriptError(0, "script has no calls")
    return ParsedScript(factory, component_name, sequence)


def run_script(text: str, **runner_kwargs: Any) -> SequenceOutcome:
    """Parse and execute a script in one step."""
    return parse_script(text).run(**runner_kwargs)


def render_script(
    sequence: TestSequence,
    component: str,
    constructor_args: Tuple[Any, ...] = (),
) -> str:
    """Render a :class:`TestSequence` as script text (inverse of
    :func:`parse_script`).

    ``component`` is the ``module:ClassName`` spec to put on the
    component line.  Golden sequences produced by
    :func:`repro.testing.generator.annotate_expectations` round-trip
    exactly (their arguments and expected values are literals).
    """
    lines = [f"# generated from sequence {sequence.name!r}"]
    ctor = (
        "(" + ", ".join(repr(a) for a in constructor_args) + ")"
        if constructor_args
        else ""
    )
    lines.append(f"component {component}{ctor}")
    for thread in sequence.threads():
        lines.append("")
        lines.append(f"thread {thread}:")
        for call in sequence.calls_for(thread):
            args = ", ".join(repr(a) for a in call.args)
            suffix = "" if call.check_completion else "?"
            parts = [f"    @{call.at} {call.method}{suffix}({args})"]
            if call.expect_returns is not UNSET:
                parts.append(f"-> {call.expect_returns!r}")
            if call.expect_never:
                parts.append("@never")
            elif call.expect_between is not None:
                lo, hi = call.expect_between
                parts.append(f"@[{lo}, {hi}]")
            elif call.expect_at is not None:
                parts.append(f"@{call.expect_at}")
            lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"
