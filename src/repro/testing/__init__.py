"""Deterministic testing harness (the ConAn method, refs [19, 20]).

Public API::

    from repro.testing import (
        TestSequence, TestCall,                     # clocked sequences
        SequenceRunner, run_sequence,               # the driver
        generate_covering_sequence, CallTemplate,   # CoFG-driven generation
        annotate_expectations,                      # golden-run oracles
        explore_systematic, explore_random,         # schedule exploration
        explore_pct, RunSummary, wilson_interval,   # shared with repro.engine
        mutate_component, ALL_OPERATORS,            # mutation engine
    )
"""

from .driver import SequenceOutcome, SequenceRunner, run_sequence
from .explorer import (
    ExplorationResult,
    ExplorationRun,
    RunSummary,
    explore_for_coverage,
    explore_pct,
    explore_random,
    explore_systematic,
    wilson_interval,
)
from .generator import (
    CallTemplate,
    GenerationResult,
    annotate_expectations,
    generate_covering_sequence,
)
from .mutation import (
    ALL_OPERATORS,
    DropSynchronized,
    InsertSpuriousWait,
    MutationOperator,
    NotifyAllToNotify,
    RemoveNotify,
    RemoveWaitLoop,
    WaitToYield,
    WhileToIf,
    applicable_operators,
    mutate_component,
)
from .regression import RegressionSuite, SuiteReport
from .script import ParsedScript, ScriptError, parse_script, render_script, run_script
from .sequence import TestCall, TestSequence

__all__ = [
    "ALL_OPERATORS",
    "CallTemplate",
    "DropSynchronized",
    "ExplorationResult",
    "ExplorationRun",
    "GenerationResult",
    "InsertSpuriousWait",
    "MutationOperator",
    "ParsedScript",
    "NotifyAllToNotify",
    "RegressionSuite",
    "RemoveNotify",
    "RemoveWaitLoop",
    "RunSummary",
    "ScriptError",
    "SequenceOutcome",
    "SequenceRunner",
    "SuiteReport",
    "TestCall",
    "TestSequence",
    "WaitToYield",
    "WhileToIf",
    "annotate_expectations",
    "applicable_operators",
    "explore_for_coverage",
    "explore_pct",
    "explore_random",
    "explore_systematic",
    "wilson_interval",
    "generate_covering_sequence",
    "mutate_component",
    "parse_script",
    "render_script",
    "run_sequence",
    "run_script",
]
