"""Deterministic testing harness (the ConAn method, refs [19, 20]).

Public API::

    from repro.testing import (
        TestSequence, TestCall,                     # clocked sequences
        SequenceRunner, run_sequence,               # the driver
        generate_covering_sequence, CallTemplate,   # CoFG-driven generation
        annotate_expectations,                      # golden-run oracles
        explore_systematic, explore_random,         # schedule exploration
        mutate_component, ALL_OPERATORS,            # mutation engine
    )
"""

from .driver import SequenceOutcome, SequenceRunner, run_sequence
from .explorer import (
    ExplorationResult,
    ExplorationRun,
    explore_for_coverage,
    explore_random,
    explore_systematic,
)
from .generator import (
    CallTemplate,
    GenerationResult,
    annotate_expectations,
    generate_covering_sequence,
)
from .mutation import (
    ALL_OPERATORS,
    DropSynchronized,
    InsertSpuriousWait,
    MutationOperator,
    NotifyAllToNotify,
    RemoveNotify,
    RemoveWaitLoop,
    WaitToYield,
    WhileToIf,
    applicable_operators,
    mutate_component,
)
from .regression import RegressionSuite, SuiteReport
from .script import ParsedScript, ScriptError, parse_script, render_script, run_script
from .sequence import TestCall, TestSequence

__all__ = [
    "ALL_OPERATORS",
    "CallTemplate",
    "DropSynchronized",
    "ExplorationResult",
    "ExplorationRun",
    "GenerationResult",
    "InsertSpuriousWait",
    "MutationOperator",
    "ParsedScript",
    "NotifyAllToNotify",
    "RegressionSuite",
    "RemoveNotify",
    "RemoveWaitLoop",
    "ScriptError",
    "SequenceOutcome",
    "SequenceRunner",
    "SuiteReport",
    "TestCall",
    "TestSequence",
    "WaitToYield",
    "WhileToIf",
    "annotate_expectations",
    "applicable_operators",
    "explore_for_coverage",
    "explore_random",
    "explore_systematic",
    "generate_covering_sequence",
    "mutate_component",
    "parse_script",
    "render_script",
    "run_sequence",
    "run_script",
]
