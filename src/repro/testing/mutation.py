"""AST-level mutation operators seeding each failure class.

The mutation-detection study (Ext-A) needs components with *known* seeded
defects.  Besides the curated faulty components
(:mod:`repro.components.faulty`), this module mutates *correct* components
mechanically: each operator transforms the AST of one method and rebuilds
the class, so any monitor in the library can be broken in a controlled,
classified way.

Operators and the class they seed:

=======================  ======  ==========================================
operator                 class   effect
=======================  ======  ==========================================
DropSynchronized         FF-T1   method loses its synchronized wrapper
WhileToIf                EF-T5   wait guard not re-checked after wake-up
WaitToYield              FF-T4   guard loop spins holding the lock forever
RemoveWaitLoop           FF-T3   the guarded wait is skipped entirely
RemoveNotify             FF-T5   notify/notifyAll statements deleted
NotifyAllToNotify        FF-T5   notifyAll weakened to single notify
InsertSpuriousWait       EF-T3   an extra wait inserted before returning
=======================  ======  ==========================================
"""

from __future__ import annotations

import ast
import copy
import linecache
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from repro.analysis.astscan import method_source_ast
from repro.classify.taxonomy import FailureClass
from repro.vm.api import MonitorComponent, synchronized, unsynchronized

__all__ = [
    "MutationOperator",
    "ALL_OPERATORS",
    "mutate_component",
    "applicable_operators",
    "DropSynchronized",
    "WhileToIf",
    "WaitToYield",
    "RemoveWaitLoop",
    "RemoveNotify",
    "NotifyAllToNotify",
    "InsertSpuriousWait",
]


def _is_syscall_yield(stmt: ast.stmt, names: set) -> bool:
    """True when ``stmt`` is ``yield <Name>(...)`` for a name in ``names``."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Yield):
        return False
    call = stmt.value.value
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
    return name in names


def _wait_loops(func: ast.FunctionDef) -> List[ast.While]:
    """All while-loops whose body contains a wait yield."""
    loops = []
    for node in ast.walk(func):
        if isinstance(node, ast.While) and any(
            _is_syscall_yield(s, {"Wait"}) for s in node.body
        ):
            loops.append(node)
    return loops


@dataclass(frozen=True)
class MutationOperator:
    """One mutation operator.

    Attributes:
        name: short identifier used in mutant class names.
        seeded_class: the Table-1 failure class the mutation seeds.
        unsynchronize: rebuild the method with ``@unsynchronized``.
        transform: AST transform (identity for wrapper-only operators).
        applies: predicate deciding whether the operator is meaningful for
            a given method AST.
    """

    name: str
    seeded_class: FailureClass
    unsynchronize: bool = False
    transform: Callable[[ast.FunctionDef], ast.FunctionDef] = lambda f: f
    applies: Callable[[ast.FunctionDef], bool] = lambda f: True


def _while_to_if(func: ast.FunctionDef) -> ast.FunctionDef:
    class Rewriter(ast.NodeTransformer):
        def visit_While(self, node: ast.While) -> ast.stmt:
            self.generic_visit(node)
            if any(_is_syscall_yield(s, {"Wait"}) for s in node.body):
                return ast.copy_location(
                    ast.If(test=node.test, body=node.body, orelse=node.orelse),
                    node,
                )
            return node

    return ast.fix_missing_locations(Rewriter().visit(func))


def _wait_to_yield(func: ast.FunctionDef) -> ast.FunctionDef:
    class Rewriter(ast.NodeTransformer):
        def visit_Expr(self, node: ast.Expr) -> ast.stmt:
            if _is_syscall_yield(node, {"Wait"}):
                replacement = ast.Expr(
                    value=ast.Yield(
                        value=ast.Call(
                            func=ast.Name(id="Yield", ctx=ast.Load()),
                            args=[],
                            keywords=[],
                        )
                    )
                )
                return ast.copy_location(replacement, node)
            return node

    return ast.fix_missing_locations(Rewriter().visit(func))


def _remove_wait_loop(func: ast.FunctionDef) -> ast.FunctionDef:
    class Rewriter(ast.NodeTransformer):
        def visit_While(self, node: ast.While) -> ast.stmt:
            self.generic_visit(node)
            if any(_is_syscall_yield(s, {"Wait"}) for s in node.body):
                # replace rather than delete: the enclosing body may have
                # no other statements, and an empty block is invalid
                return ast.copy_location(ast.Pass(), node)
            return node

    return ast.fix_missing_locations(Rewriter().visit(func))


def _remove_notify(func: ast.FunctionDef) -> ast.FunctionDef:
    class Rewriter(ast.NodeTransformer):
        def visit_Expr(self, node: ast.Expr) -> ast.stmt:
            if _is_syscall_yield(node, {"Notify", "NotifyAll"}):
                return ast.copy_location(ast.Pass(), node)
            return node

    return ast.fix_missing_locations(Rewriter().visit(func))


def _notifyall_to_notify(func: ast.FunctionDef) -> ast.FunctionDef:
    class Rewriter(ast.NodeTransformer):
        def visit_Call(self, node: ast.Call) -> ast.Call:
            self.generic_visit(node)
            if isinstance(node.func, ast.Name) and node.func.id == "NotifyAll":
                node.func = ast.copy_location(
                    ast.Name(id="Notify", ctx=ast.Load()), node.func
                )
            return node

    return ast.fix_missing_locations(Rewriter().visit(func))


def _insert_spurious_wait(func: ast.FunctionDef) -> ast.FunctionDef:
    wait_stmt = ast.Expr(
        value=ast.Yield(
            value=ast.Call(
                func=ast.Name(id="Wait", ctx=ast.Load()), args=[], keywords=[]
            )
        )
    )
    # Insert before the last statement of the body (typically the notify
    # or the return), so the wait happens after the useful work.
    body = list(func.body)
    body.insert(max(len(body) - 1, 0), wait_stmt)
    func.body = body
    return ast.fix_missing_locations(func)


def _has_wait(func: ast.FunctionDef) -> bool:
    return bool(_wait_loops(func)) or any(
        _is_syscall_yield(s, {"Wait"}) for s in ast.walk(func) if isinstance(s, ast.stmt)
    )


def _has_notify(func: ast.FunctionDef) -> bool:
    return any(
        _is_syscall_yield(s, {"Notify", "NotifyAll"})
        for s in ast.walk(func)
        if isinstance(s, ast.stmt)
    )


def _has_notifyall(func: ast.FunctionDef) -> bool:
    return any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Name)
        and n.func.id == "NotifyAll"
        for n in ast.walk(func)
    )


DropSynchronized = MutationOperator(
    name="drop_sync",
    seeded_class=FailureClass.FF_T1,
    unsynchronize=True,
    # waiting or notifying without the lock throws
    # IllegalMonitorStateException (in Java and in this VM) — an instant
    # crash, not the silent interference FF-T1 classifies — so the
    # operator only applies to plain state-accessing methods.
    applies=lambda f: not _has_wait(f) and not _has_notify(f),
)
WhileToIf = MutationOperator(
    name="while_to_if",
    seeded_class=FailureClass.EF_T5,
    transform=_while_to_if,
    applies=lambda f: bool(_wait_loops(f)),
)
WaitToYield = MutationOperator(
    name="wait_to_yield",
    seeded_class=FailureClass.FF_T4,
    transform=_wait_to_yield,
    applies=lambda f: bool(_wait_loops(f)),
)
RemoveWaitLoop = MutationOperator(
    name="remove_wait_loop",
    seeded_class=FailureClass.FF_T3,
    transform=_remove_wait_loop,
    applies=lambda f: bool(_wait_loops(f)),
)
RemoveNotify = MutationOperator(
    name="remove_notify",
    seeded_class=FailureClass.FF_T5,
    transform=_remove_notify,
    applies=_has_notify,
)
NotifyAllToNotify = MutationOperator(
    name="notifyall_to_notify",
    seeded_class=FailureClass.FF_T5,
    transform=_notifyall_to_notify,
    applies=_has_notifyall,
)
InsertSpuriousWait = MutationOperator(
    name="insert_spurious_wait",
    seeded_class=FailureClass.EF_T3,
    transform=_insert_spurious_wait,
)

ALL_OPERATORS: List[MutationOperator] = [
    DropSynchronized,
    WhileToIf,
    WaitToYield,
    RemoveWaitLoop,
    RemoveNotify,
    NotifyAllToNotify,
    InsertSpuriousWait,
]

_SYSCALL_NAMES = ("Wait", "Notify", "NotifyAll", "Yield", "Acquire", "Release")


def applicable_operators(
    cls: Type[MonitorComponent], method_name: str
) -> List[MutationOperator]:
    """Operators meaningful for ``cls.method_name``."""
    func, _ = method_source_ast(getattr(cls, method_name))
    return [op for op in ALL_OPERATORS if op.applies(func)]


def mutate_component(
    cls: Type[MonitorComponent],
    method_name: str,
    operator: MutationOperator,
) -> Type[MonitorComponent]:
    """Build a mutant subclass of ``cls`` with ``method_name`` transformed.

    The mutated source is registered with :mod:`linecache` so that CoFG
    construction and coverage (which read the source) keep working on the
    mutant.
    """
    method = getattr(cls, method_name)
    func, _ = method_source_ast(method)
    func = copy.deepcopy(func)
    func = operator.transform(func)
    func.decorator_list = []
    module = ast.Module(body=[func], type_ignores=[])
    ast.fix_missing_locations(module)
    source = ast.unparse(module) + "\n"
    filename = f"<mutant:{cls.__name__}.{method_name}:{operator.name}>"
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    namespace: Dict[str, object] = {}
    defining_module = sys.modules.get(cls.__module__)
    if defining_module is not None:
        namespace.update(vars(defining_module))
    from repro.vm import syscalls as _syscalls

    for name in _SYSCALL_NAMES:
        namespace[name] = getattr(_syscalls, name)
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102 - controlled source
    raw = namespace[method_name]
    wrapper = unsynchronized if operator.unsynchronize else synchronized
    mutant_name = f"{cls.__name__}__{operator.name}"
    return type(mutant_name, (cls,), {method_name: wrapper(raw)})
