"""Emitter for Figure 3 / Section 6.1: the producer-consumer CoFGs.

Renders the statically constructed CoFGs of ``receive`` and ``send`` side
by side with the transition sequences the paper prints, flagging the one
documented discrepancy (the paper's ``wait -> notifyAll`` row prints
"T3, T4, T5"; the model-consistent sequence is "T3, T5, T2, T5" — see
``repro.analysis.builder``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.analysis.builder import PAPER_FIGURE3_SEQUENCES, build_all_cofgs
from repro.analysis.model import CoFG
from repro.components.producer_consumer import ProducerConsumer
from repro.vm.api import MonitorComponent

from .text import render_table

__all__ = ["figure3_rows", "render_figure3"]


def figure3_rows(
    component: Type[MonitorComponent] = ProducerConsumer,
) -> Dict[str, List[Tuple[str, str, str, str, str]]]:
    """Per-method rows: (arc, computed transitions, paper transitions,
    agreement, guard)."""
    out: Dict[str, List[Tuple[str, str, str, str, str]]] = {}
    for method, cofg in build_all_cofgs(component).items():
        rows: List[Tuple[str, str, str, str, str]] = []
        for arc in cofg.arcs:
            computed = ", ".join(arc.transitions)
            paper_seq = PAPER_FIGURE3_SEQUENCES.get((arc.src.kind, arc.dst.kind))
            paper = ", ".join(paper_seq) if paper_seq else "(not printed)"
            agree = (
                "yes"
                if paper_seq and tuple(arc.transitions) == paper_seq
                else ("no*" if paper_seq else "-")
            )
            rows.append(
                (
                    f"{arc.src.kind.value} -> {arc.dst.kind.value}",
                    computed,
                    paper,
                    agree,
                    arc.guard,
                )
            )
        out[method] = rows
    return out


def render_figure3(component: Type[MonitorComponent] = ProducerConsumer) -> str:
    """Render the Figure-3 CoFGs as tables, one per method."""
    sections: List[str] = [
        "Figure 3. CoFGs for producer-consumer "
        f"({component.__name__}.receive / .send)"
    ]
    for method, rows in figure3_rows(component).items():
        sections.append(
            render_table(
                ("Arc", "Computed firings", "Paper (Sec 6.1)", "Match", "Guard"),
                rows,
                widths=(22, 18, 18, 5, 34),
                title=f"{component.__name__}.{method}",
            )
        )
    sections.append(
        "* the paper prints 'T3, T4, T5' for wait->notifyAll; a thread "
        "resuming from wait fires T5 then T2 (it cannot fire T4 before the "
        "end of the synchronized block), so the computed sequence is kept "
        "— see repro.analysis.builder for the full reading."
    )
    return "\n\n".join(sections)
