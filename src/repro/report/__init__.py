"""Emitters regenerating the paper's tables and figures.

Public API::

    from repro.report import render_table1, render_figure1, render_figure3
"""

from .figure1 import Figure1Report, build_figure1_report, render_figure1
from .figure3 import figure3_rows, render_figure3
from .table1 import render_table1, table1_rows
from .text import render_table

__all__ = [
    "Figure1Report",
    "build_figure1_report",
    "figure3_rows",
    "render_figure1",
    "render_figure3",
    "render_table",
    "render_table1",
    "table1_rows",
]
