"""Emitter for Figure 1: the Petri-net model of concurrency.

Regenerates the model's structure (places A-E, transitions T1-T5, arcs,
initial marking) and the analyses that validate it: full reachability,
the mutual-exclusion and one-state-per-thread invariants, safeness, and
reversibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.petri import (
    ConcurrencyModel,
    build_reachability_graph,
    invariant_holds,
    net_to_dot,
    place_invariants,
)

__all__ = ["Figure1Report", "build_figure1_report", "render_figure1"]


@dataclass
class Figure1Report:
    """Structure + verified properties of the Figure-1 model."""

    n_threads: int
    n_places: int
    n_transitions: int
    n_arcs: int
    reachable_states: int
    dead_states: int
    safe: bool
    reversible: bool
    invariants: List[str]
    invariants_verified: bool
    mutual_exclusion_everywhere: bool
    thread_state_everywhere: bool
    dot: str


def build_figure1_report(n_threads: int = 1) -> Figure1Report:
    """Build and analyse the model for ``n_threads`` threads."""
    model = ConcurrencyModel.create(n_threads=n_threads)
    graph = build_reachability_graph(model.net, model.initial)
    invariants = place_invariants(model.net)
    verified = all(
        invariant_holds(inv, model.net, graph.markings) for inv in invariants
    )
    return Figure1Report(
        n_threads=n_threads,
        n_places=len(model.net.places),
        n_transitions=len(model.net.transitions),
        n_arcs=len(model.net.arcs),
        reachable_states=len(graph),
        dead_states=len(graph.dead),
        safe=graph.is_safe(),
        reversible=graph.strongly_connected(),
        invariants=[str(inv) for inv in invariants],
        invariants_verified=verified,
        mutual_exclusion_everywhere=all(
            model.mutual_exclusion_holds(m) for m in graph.markings
        ),
        thread_state_everywhere=all(
            model.thread_state_consistent(m) for m in graph.markings
        ),
        dot=net_to_dot(model.net, model.initial),
    )


def render_figure1(n_threads: int = 1) -> str:
    """Human-readable rendering of the Figure-1 model and its properties."""
    report = build_figure1_report(n_threads)
    lines = [
        f"Figure 1. Petri-net model of concurrency ({report.n_threads} thread(s))",
        f"  places: {report.n_places}  transitions: {report.n_transitions}  "
        f"arcs: {report.n_arcs}",
        f"  reachable markings: {report.reachable_states} "
        f"(dead: {report.dead_states})",
        f"  safe (1-bounded): {report.safe}",
        f"  reversible (can always return to initial): {report.reversible}",
        f"  mutual exclusion in every reachable marking: "
        f"{report.mutual_exclusion_everywhere}",
        f"  each thread in exactly one state everywhere: "
        f"{report.thread_state_everywhere}",
        "  place invariants (verified on the full state space):",
    ]
    for invariant in report.invariants:
        lines.append(f"    {invariant} = const")
    return "\n".join(lines)
