"""Plain-text table rendering for the paper-artifact emitters."""

from __future__ import annotations

import textwrap
from typing import List, Optional, Sequence

__all__ = ["render_table"]


def _wrap_cell(text: str, width: int) -> List[str]:
    lines: List[str] = []
    for paragraph in str(text).splitlines() or [""]:
        wrapped = textwrap.wrap(paragraph, width=width) or [""]
        lines.extend(wrapped)
    return lines


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    widths: Optional[Sequence[int]] = None,
    title: str = "",
) -> str:
    """Render a wrapped, ruled ASCII table.

    ``widths`` fixes per-column wrap widths; by default each column gets
    the width of its longest unwrapped cell, capped at 28 characters.
    """
    n_cols = len(headers)
    for row in rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_cols}: {row!r}"
            )
    if widths is None:
        widths = []
        for col in range(n_cols):
            longest = max(
                [len(str(headers[col]))]
                + [len(str(row[col])) for row in rows]
                or [1]
            )
            widths.append(min(longest, 28))
    else:
        widths = list(widths)

    def render_row(cells: Sequence[str]) -> List[str]:
        wrapped = [_wrap_cell(cell, widths[i]) for i, cell in enumerate(cells)]
        height = max(len(w) for w in wrapped)
        out = []
        for line_index in range(height):
            parts = []
            for col in range(n_cols):
                cell_lines = wrapped[col]
                text = cell_lines[line_index] if line_index < len(cell_lines) else ""
                parts.append(text.ljust(widths[col]))
            out.append("| " + " | ".join(parts) + " |")
        return out

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(rule)
    lines.extend(render_row(headers))
    lines.append(rule)
    for row in rows:
        lines.extend(render_row(row))
        lines.append(rule)
    return "\n".join(lines)
