"""Emitter for Table 1: the concurrency failure classification.

:func:`render_table1` regenerates the paper's Table 1 from the HAZOP
engine (deviations derived from the Figure-1 net, joined with the curated
taxonomy), row for row, in the paper's column layout: Transition |
Failure | Cause | Conditions | Consequences | Testing Notes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.classify.hazop import derive_table1

from .text import render_table

__all__ = ["table1_rows", "render_table1"]

_HEADERS = (
    "Transition",
    "Failure",
    "Cause",
    "Conditions",
    "Consequences",
    "Testing Notes",
)


def table1_rows() -> List[Tuple[str, str, str, str, str, str]]:
    """The table body, one tuple per printed row (11 rows: FF-T4 has two
    cause rows), in the paper's order."""
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for analysis_row in derive_table1():
        for i, entry in enumerate(analysis_row.entries):
            rows.append(
                (
                    analysis_row.item.transition if i == 0 else "",
                    f"{entry.mode.value} {entry.transition}" if i == 0 else "",
                    entry.cause,
                    entry.conditions,
                    entry.consequences,
                    entry.testing_notes,
                )
            )
    return rows


def render_table1(width: int = 24) -> str:
    """Render Table 1 as ruled ASCII text."""
    return render_table(
        _HEADERS,
        table1_rows(),
        widths=(10, 20, width, width, width, width),
        title="Table 1. Concurrency failure classification",
    )
