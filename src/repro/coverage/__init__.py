"""CoFG arc-coverage measurement (paper Section 6).

Public API::

    from repro.coverage import CoverageTracker, CoverageMatrix
"""

from .matrix import CoverageMatrix
from .tracker import (
    ArcHit,
    CallPath,
    CoverageAnomaly,
    CoverageTracker,
    MethodCoverage,
)

__all__ = [
    "ArcHit",
    "CallPath",
    "CoverageAnomaly",
    "CoverageMatrix",
    "CoverageTracker",
    "MethodCoverage",
]
