"""Coverage matrices: arc coverage across many runs / test sequences.

Used by the exploration-cost study (Ext-B): rows are runs (e.g. one per
random-schedule seed or one per generated test sequence), columns are CoFG
arcs, entries are hit counts.  The matrix answers questions like "how many
random schedules until every arc is covered?" and "which arcs are rare?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.model import CoFG

from .tracker import CoverageTracker

__all__ = ["CoverageMatrix"]


@dataclass
class CoverageMatrix:
    """Hit counts of every arc for every run.

    Build incrementally with :meth:`add_run`; arcs are fixed at
    construction from the supplied CoFGs.
    """

    cofgs: Dict[str, CoFG]
    arc_keys: List[Tuple[str, str, str]] = field(default_factory=list)
    rows: List[np.ndarray] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.arc_keys:
            for method, cofg in self.cofgs.items():
                for arc in cofg.arcs:
                    self.arc_keys.append((method, arc.src.name, arc.dst.name))

    def add_run(self, tracker: CoverageTracker, label: str = "") -> None:
        """Append one run's hit counts (from a fed tracker)."""
        row = np.zeros(len(self.arc_keys), dtype=np.int64)
        for i, (method, src, dst) in enumerate(self.arc_keys):
            coverage = tracker.methods.get(method)
            if coverage is not None:
                row[i] = coverage.hits.get((src, dst), 0)
        self.rows.append(row)
        self.labels.append(label or f"run{len(self.rows)}")

    def add_counts(
        self,
        counts: Dict[Tuple[str, str, str], int],
        label: str = "",
    ) -> None:
        """Append one run's hit counts from a plain ``(method, src, dst)
        -> count`` mapping — the serializable form a campaign worker
        streams back, so matrices merge across process boundaries without
        shipping trackers or traces."""
        row = np.zeros(len(self.arc_keys), dtype=np.int64)
        for i, key in enumerate(self.arc_keys):
            row[i] = counts.get(key, 0)
        self.rows.append(row)
        self.labels.append(label or f"run{len(self.rows)}")

    def merge(self, other: "CoverageMatrix") -> None:
        """Append every row of ``other`` (built over the same CoFGs) —
        the incremental-merge primitive for sharded campaigns."""
        if other.arc_keys != self.arc_keys:
            raise ValueError(
                "cannot merge coverage matrices with different arc sets "
                f"({len(self.arc_keys)} vs {len(other.arc_keys)} arcs)"
            )
        self.rows.extend(other.rows)
        self.labels.extend(other.labels)

    # -- queries -------------------------------------------------------------

    def as_array(self) -> np.ndarray:
        """(runs x arcs) hit-count matrix."""
        if not self.rows:
            return np.zeros((0, len(self.arc_keys)), dtype=np.int64)
        return np.vstack(self.rows)

    def cumulative_coverage(self) -> np.ndarray:
        """Fraction of arcs covered by the union of the first k runs,
        for k = 1..n (the saturation curve of the exploration study)."""
        matrix = self.as_array()
        if matrix.size == 0:
            return np.zeros(0)
        covered = (np.cumsum(matrix > 0, axis=0) > 0)
        return covered.sum(axis=1) / matrix.shape[1]

    def coverage_fraction(self) -> float:
        """Fraction of arcs covered by the union of *all* runs so far
        (the live number a campaign's progress line reports)."""
        curve = self.cumulative_coverage()
        return float(curve[-1]) if curve.size else 0.0

    def runs_to_full_coverage(self) -> Optional[int]:
        """Smallest k with full union coverage after k runs, or None."""
        curve = self.cumulative_coverage()
        full = np.nonzero(curve >= 1.0)[0]
        return int(full[0]) + 1 if full.size else None

    def arc_hit_rates(self) -> np.ndarray:
        """Per-arc fraction of runs that covered the arc (rarity measure)."""
        matrix = self.as_array()
        if matrix.shape[0] == 0:
            return np.zeros(len(self.arc_keys))
        return (matrix > 0).mean(axis=0)

    def rarest_arcs(self, k: int = 3) -> List[Tuple[Tuple[str, str, str], float]]:
        """The k arcs covered by the fewest runs, with their hit rates."""
        rates = self.arc_hit_rates()
        order = np.argsort(rates)[:k]
        return [(self.arc_keys[i], float(rates[i])) for i in order]
