"""CoFG arc-coverage measurement over VM traces (paper Section 6).

The paper's test-selection criterion is: *construct test sequences that
cover the arcs of the CoFGs*.  This module measures that coverage: given
the static CoFGs of a component and an execution trace, it maps each
component call to the path it took through its method's CoFG and counts
arc hits.

The mapping uses source lines: every runtime wait/notify event carries the
line of the ``yield`` that produced it (captured by the kernel from the
generator frame), and every static CoFG node carries the line of the
statement it was built from — the same line, because both come from the
same source file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.model import CoFG, CoFGArc, CoFGNode, NodeKind
from repro.vm.events import Event, EventKind
from repro.vm.trace import CallRecord, Trace

__all__ = ["ArcHit", "CallPath", "CoverageAnomaly", "MethodCoverage", "CoverageTracker"]

_EVENT_NODE_KIND: Dict[EventKind, NodeKind] = {
    EventKind.MONITOR_WAIT: NodeKind.WAIT,
    EventKind.NOTIFY: NodeKind.NOTIFY,
    EventKind.NOTIFY_ALL: NodeKind.NOTIFY_ALL,
    EventKind.YIELD: NodeKind.YIELD,
}


@dataclass(frozen=True)
class ArcHit:
    """One traversal of a CoFG arc by one call."""

    arc: CoFGArc
    thread: str
    call_begin_seq: int


@dataclass(frozen=True)
class CoverageAnomaly:
    """A dynamic step that does not match any static arc — either the
    static analysis missed a region or the component behaved outside its
    analysed control flow (e.g. a monkey-patched mutant)."""

    method: str
    thread: str
    src: str
    dst: str
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"unmatched dynamic arc {self.src} -> {self.dst} in {self.method} "
            f"(thread {self.thread}){': ' + self.detail if self.detail else ''}"
        )


@dataclass(frozen=True)
class CallPath:
    """The CoFG node path one call took (including synthetic start/end)."""

    record: CallRecord
    nodes: Tuple[str, ...]
    completed: bool


@dataclass
class MethodCoverage:
    """Arc-coverage state of one method's CoFG."""

    cofg: CoFG
    hits: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for arc in self.cofg.arcs:
            self.hits.setdefault((arc.src.name, arc.dst.name), 0)

    @property
    def total_arcs(self) -> int:
        return len(self.cofg.arcs)

    @property
    def covered_arcs(self) -> int:
        return sum(1 for count in self.hits.values() if count > 0)

    @property
    def fraction(self) -> float:
        return self.covered_arcs / self.total_arcs if self.total_arcs else 1.0

    def uncovered(self) -> List[CoFGArc]:
        return [
            arc
            for arc in self.cofg.arcs
            if self.hits[(arc.src.name, arc.dst.name)] == 0
        ]

    def is_complete(self) -> bool:
        return self.covered_arcs == self.total_arcs

    def describe(self) -> str:
        lines = [
            f"{self.cofg.component}.{self.cofg.method}: "
            f"{self.covered_arcs}/{self.total_arcs} arcs "
            f"({self.fraction:.0%})"
        ]
        for arc in self.cofg.arcs:
            count = self.hits[(arc.src.name, arc.dst.name)]
            mark = "COVERED" if count else "UNCOVERED"
            lines.append(f"  {mark:>9}  {arc.name}  x{count}")
        return "\n".join(lines)


class CoverageTracker:
    """Accumulates CoFG arc coverage for one component across traces."""

    def __init__(self, cofgs: Dict[str, CoFG]) -> None:
        if not cofgs:
            raise ValueError("no CoFGs supplied")
        self.component = next(iter(cofgs.values())).component
        self.methods: Dict[str, MethodCoverage] = {
            name: MethodCoverage(cofg) for name, cofg in cofgs.items()
        }
        self.paths: List[CallPath] = []
        self.anomalies: List[CoverageAnomaly] = []

    # -- feeding ------------------------------------------------------------

    def _node_for_event(self, cofg: CoFG, event: Event) -> Optional[CoFGNode]:
        kind = _EVENT_NODE_KIND.get(event.kind)
        if kind is None:
            return None
        line = event.detail.get("line")
        if line is None:
            return None
        return cofg.node_at_line(kind, line)

    def feed(self, trace: Trace) -> None:
        """Measure coverage contributed by one trace."""
        concurrency_events: Dict[str, List[Event]] = {}
        for event in trace:
            if event.kind in _EVENT_NODE_KIND and event.component == self.component:
                concurrency_events.setdefault(event.thread, []).append(event)

        for record in trace.call_records():
            coverage = self.methods.get(record.method)
            if coverage is None or record.component != self.component:
                continue
            events = [
                e
                for e in concurrency_events.get(record.thread, [])
                if e.seq > record.begin_seq
                and (record.end_seq is None or e.seq < record.end_seq)
                and e.method == record.method
            ]
            node_names: List[str] = ["start"]
            for event in events:
                node = self._node_for_event(coverage.cofg, event)
                if node is None:
                    self.anomalies.append(
                        CoverageAnomaly(
                            method=record.method,
                            thread=record.thread,
                            src=node_names[-1],
                            dst=f"{event.kind.value}@{event.detail.get('line')}",
                            detail="no static node at this source line",
                        )
                    )
                    continue
                node_names.append(node.name)
            if record.completed:
                node_names.append("end")
            path = CallPath(record, tuple(node_names), record.completed)
            self.paths.append(path)
            for src, dst in zip(node_names, node_names[1:]):
                key = (src, dst)
                if key in coverage.hits:
                    coverage.hits[key] += 1
                else:
                    self.anomalies.append(
                        CoverageAnomaly(
                            method=record.method,
                            thread=record.thread,
                            src=src,
                            dst=dst,
                            detail="dynamic arc absent from static CoFG",
                        )
                    )

    # -- results -------------------------------------------------------------

    @property
    def total_arcs(self) -> int:
        return sum(m.total_arcs for m in self.methods.values())

    @property
    def covered_arcs(self) -> int:
        return sum(m.covered_arcs for m in self.methods.values())

    @property
    def fraction(self) -> float:
        return self.covered_arcs / self.total_arcs if self.total_arcs else 1.0

    def is_complete(self) -> bool:
        return all(m.is_complete() for m in self.methods.values())

    def uncovered(self) -> Dict[str, List[CoFGArc]]:
        return {
            name: coverage.uncovered()
            for name, coverage in self.methods.items()
            if coverage.uncovered()
        }

    def describe(self) -> str:
        lines = [
            f"CoFG coverage for {self.component}: "
            f"{self.covered_arcs}/{self.total_arcs} arcs ({self.fraction:.0%})"
        ]
        for coverage in self.methods.values():
            lines.append(coverage.describe())
        if self.anomalies:
            lines.append("anomalies:")
            lines.extend(f"  {a}" for a in self.anomalies)
        return "\n".join(lines)
