"""Built-in fault plans, registered under stable names.

These target the thread names the built-in workload templates spawn
(consumers ``c0..``, producers ``p1..``), so ``--faults interrupt-consumer``
works out of the box against any producer-consumer style workload.  Plans
for other shapes are registered the same way::

    from repro.run.registry import register_fault_plan

    register_fault_plan("my-plan")(FaultPlan(name="my-plan", rules=(...)))
"""

from __future__ import annotations

from repro.run.registry import FAULTS

from .plan import FaultPlan, FaultRule

__all__ = [
    "EXPIRE_FIRST_WAIT",
    "INTERRUPT_CONSUMER",
    "SPURIOUS_FIRST_WAIT",
]

#: Interrupt consumer ``c0`` during its first wait — exercises the
#: interrupt-propagation path (and EV-INT swallowing, if present).
INTERRUPT_CONSUMER = FaultPlan(
    name="interrupt-consumer",
    rules=(FaultRule(action="interrupt", thread="c0", at_wait=1),),
)

#: Force consumer ``c0``'s first wait to expire as a timeout — exercises
#: timeout handling (EV-TMO when the expiry is mistaken for success).
EXPIRE_FIRST_WAIT = FaultPlan(
    name="expire-first-wait",
    rules=(FaultRule(action="timeout", thread="c0", at_wait=1),),
)

#: Spuriously wake consumer ``c0`` from its first wait — exercises the
#: guard re-check (EV-SPU / EF-T5 when the guard is an ``if``).
SPURIOUS_FIRST_WAIT = FaultPlan(
    name="spurious-first-wait",
    rules=(FaultRule(action="spurious", thread="c0", at_wait=1),),
)

for _plan in (INTERRUPT_CONSUMER, EXPIRE_FIRST_WAIT, SPURIOUS_FIRST_WAIT):
    FAULTS.add(_plan.name, _plan)
del _plan
