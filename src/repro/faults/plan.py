"""Declarative fault plans: serializable trigger × action rules.

A :class:`FaultPlan` is a frozen, order-significant list of
:class:`FaultRule` entries, each binding one *trigger* (when to fire) to
one *action* (which environment deviation to inject):

=============== ====================================================
Action          Kernel effect
=============== ====================================================
``interrupt``   ``Kernel.interrupt(thread)`` — ``Thread.interrupt()``
``timeout``     ``Kernel.expire_wait(thread)`` — force the wait to
                expire with ``reason="timeout"``
``spurious``    ``Kernel.spurious_wake(monitor, waiter)`` — wake one
                waiter with no notify
=============== ====================================================

Triggers (exactly one per rule):

* ``at_step = N`` — fire at the first step boundary where the kernel's
  step counter has reached ``N`` *and* the action is applicable (the
  target is waiting, for ``timeout``/``spurious``);
* ``at_wait = N`` — fire when the target thread is inside its ``N``-th
  wait (counted per thread, 1-based);
* ``after_waiting = K`` — fire once the target thread has been waiting
  ``K`` virtual-time units continuously.

Every quantity a trigger counts is deterministic (kernel steps, per-thread
wait ordinals, virtual time), and the injector draws no randomness, so a
plan deterministically maps (program, scheduler seed) to a faulted trace.
Plans serialize to plain JSON-compatible dicts; the canonical JSON form is
the campaign-fingerprint key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["ACTIONS", "FaultPlan", "FaultPlanError", "FaultRule", "TRIGGERS"]

#: The legal ``FaultRule.action`` values.
ACTIONS: Tuple[str, ...] = ("interrupt", "timeout", "spurious")

#: The trigger field names, of which each rule sets exactly one.
TRIGGERS: Tuple[str, ...] = ("at_step", "at_wait", "after_waiting")


class FaultPlanError(ValueError):
    """A fault plan or rule is malformed."""


@dataclass(frozen=True)
class FaultRule:
    """One trigger × action injection rule.  Fires at most once per run.

    Attributes:
        action: ``"interrupt"``, ``"timeout"``, or ``"spurious"``.
        thread: target thread name.  Required for ``interrupt`` and
            ``timeout``; for ``spurious`` it names the waiter to wake
            (optional when ``monitor`` is given — the injector then wakes
            the longest-waiting thread in that monitor's wait set).
        monitor: monitor whose wait set a ``spurious`` rule targets.
            Inferred from the thread's wait when omitted; meaningless for
            the other actions.
        at_step / at_wait / after_waiting: the trigger (see module docs).
    """

    action: str
    thread: Optional[str] = None
    monitor: Optional[str] = None
    at_step: Optional[int] = None
    at_wait: Optional[int] = None
    after_waiting: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {', '.join(ACTIONS)})"
            )
        set_triggers = [t for t in TRIGGERS if getattr(self, t) is not None]
        if len(set_triggers) != 1:
            raise FaultPlanError(
                f"fault rule must set exactly one of {', '.join(TRIGGERS)} "
                f"(got {set_triggers or 'none'})"
            )
        trigger = set_triggers[0]
        value = getattr(self, trigger)
        if not isinstance(value, int) or isinstance(value, bool):
            raise FaultPlanError(f"{trigger} must be an integer, got {value!r}")
        minimum = 1 if trigger == "at_wait" else 0
        if value < minimum:
            raise FaultPlanError(f"{trigger} must be >= {minimum}, got {value}")
        if self.action in ("interrupt", "timeout"):
            if not self.thread:
                raise FaultPlanError(
                    f"{self.action!r} rules must name a target thread"
                )
            if self.monitor is not None:
                raise FaultPlanError(
                    f"{self.action!r} rules target a thread, not a monitor"
                )
        else:  # spurious
            if not self.thread and not self.monitor:
                raise FaultPlanError(
                    "'spurious' rules must name a thread and/or a monitor"
                )
        if trigger in ("at_wait", "after_waiting") and not self.thread:
            raise FaultPlanError(
                f"{trigger} counts a thread's waits; the rule must name one"
            )

    @property
    def trigger(self) -> Tuple[str, int]:
        """The (name, value) of this rule's one set trigger."""
        for t in TRIGGERS:
            value = getattr(self, t)
            if value is not None:
                return (t, value)
        raise AssertionError("validated rule has a trigger")  # pragma: no cover

    def to_dict(self) -> Dict[str, Any]:
        """A plain dict with only the fields that are set."""
        out: Dict[str, Any] = {"action": self.action}
        for f in ("thread", "monitor", *TRIGGERS):
            value = getattr(self, f)
            if value is not None:
                out[f] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault-rule key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "action" not in data:
            raise FaultPlanError("fault rule is missing 'action'")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, named sequence of :class:`FaultRule` entries.

    Rules are consulted in order at every step boundary; each fires at
    most once.  The plan is immutable and serializable, so it can ride in
    a :class:`~repro.run.config.RunConfig`, a scenario file's ``[faults]``
    table, and a campaign fingerprint.
    """

    name: str = "faults"
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultPlanError("fault plan needs a non-empty name")
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultPlanError(f"not a FaultRule: {rule!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        unknown = sorted(set(data) - {"name", "rules"})
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan key(s): {', '.join(unknown)} "
                f"(known: name, rules)"
            )
        rules_raw = data.get("rules", [])
        if isinstance(rules_raw, Mapping) or not hasattr(rules_raw, "__iter__"):
            raise FaultPlanError("'rules' must be a list of rule tables")
        rules = []
        for entry in rules_raw:
            if not isinstance(entry, Mapping):
                raise FaultPlanError(f"fault rule must be a table: {entry!r}")
            rules.append(FaultRule.from_dict(entry))
        return cls(name=str(data.get("name", "faults")), rules=tuple(rules))

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) — also the
        campaign-fingerprint key for the fault-plan axis."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(data)

    def fingerprint_key(self) -> str:
        """Alias of :meth:`to_json`, named for its fingerprint role."""
        return self.to_json()
