"""Deterministic environment-fault injection.

The JVM's environment is allowed to deviate from the happy path: threads
get interrupted, timed waits expire, and ``wait()`` may return spuriously.
A component that is only correct when none of that happens harbors the
environment-firing failures this package seeds, injects, and detects:

* :class:`FaultPlan` / :class:`FaultRule` (:mod:`.plan`) — a frozen,
  serializable description of *which* deviation to inject *when*
  (trigger × action rules; rides in scenario files and fingerprints);
* :class:`FaultInjector` (:mod:`.injector`) — the plan interpreter the
  kernel consults at every step boundary; fully deterministic, so a
  faulted run replays byte-identically from its seed and plan;
* :mod:`.templates` — built-in plans in the ``FAULTS`` registry
  (``interrupt-consumer``, ``expire-first-wait``, ``spurious-first-wait``).

The injected effects themselves live in the VM
(:meth:`repro.vm.Kernel.interrupt`, :meth:`~repro.vm.Kernel.expire_wait`,
:meth:`~repro.vm.Kernel.spurious_wake`); detection of the mishandled
deviations lives in :mod:`repro.classify.symptoms` (dynamic) and
:mod:`repro.analysis.static_checks` (interrupt swallowing).
"""

from .injector import FaultInjector
from .plan import ACTIONS, TRIGGERS, FaultPlan, FaultPlanError, FaultRule

__all__ = [
    "ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "TRIGGERS",
]
