"""The deterministic fault injector: a plan interpreter over kernel state.

A :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan`
and plugs into ``Kernel.fault_injector``; the kernel calls
:meth:`on_step` at the top of every scheduling step.  Rule triggers are
evaluated against purely deterministic kernel quantities — the step
counter, per-thread wait ordinals, virtual time — and the injector draws
no randomness of its own, so the same (program, seed, plan) triple always
produces the same faulted trace.

An injector is reusable across runs: call :meth:`reset` before each one
(the executor does this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

# thread.py is import-cycle-free (stdlib only); the kernel import must be
# typing-only because the kernel itself pulls in this package via the
# scheduler -> run-registry chain.
from repro.vm.thread import SimThread, ThreadState

from .plan import FaultPlan, FaultRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.kernel import Kernel

__all__ = ["FaultInjector"]


class FaultInjector:
    """Fires a :class:`FaultPlan`'s rules against a running kernel."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fired: List[bool] = [False] * len(plan.rules)

    def reset(self) -> "FaultInjector":
        """Forget which rules have fired (call between runs); returns
        self for chaining."""
        self._fired = [False] * len(self.plan.rules)
        return self

    @property
    def fired(self) -> Tuple[bool, ...]:
        """Per-rule fired flags, in plan order."""
        return tuple(self._fired)

    # Kernel hook -------------------------------------------------------

    def on_step(self, kernel: Kernel) -> None:
        """Consulted by the kernel at every step boundary."""
        for i, rule in enumerate(self.plan.rules):
            if self._fired[i]:
                continue
            if self._triggered(rule, kernel) and self._applicable(rule, kernel):
                self._fired[i] = True
                self._fire(rule, kernel)

    # Trigger evaluation ------------------------------------------------

    def _triggered(self, rule: FaultRule, kernel: Kernel) -> bool:
        trigger, value = rule.trigger
        if trigger == "at_step":
            return kernel.steps >= value
        # Both remaining triggers count properties of the target thread's
        # current wait, so it must actually be waiting.
        thread = kernel.threads.get(rule.thread or "")
        if thread is None or thread.state is not ThreadState.WAITING:
            return False
        if trigger == "at_wait":
            return thread.waits_entered >= value
        # after_waiting
        if thread.waiting_since is None:
            return False
        return kernel.time - thread.waiting_since >= value

    def _applicable(self, rule: FaultRule, kernel: Kernel) -> bool:
        """Whether the action can take effect right now.

        ``at_step`` triggers stay armed past their step until the target
        becomes eligible (a timeout cannot expire a wait that has not
        started yet); the per-wait triggers already imply eligibility.
        """
        if rule.action == "interrupt":
            thread = kernel.threads.get(rule.thread or "")
            return thread is not None and thread.is_live()
        if rule.action == "timeout":
            # A forced timeout can expire a monitor wait or a *timed*
            # semaphore acquire (an untimed acquire has no deadline to
            # force, exactly as in j.u.c).
            thread = kernel.threads.get(rule.thread or "")
            if thread is None:
                return False
            if thread.state is ThreadState.WAITING:
                return True
            return (
                thread.state is ThreadState.BLOCKED
                and thread.blocked_kind == "semaphore"
                and thread.acquire_deadline is not None
            )
        # spurious: the named waiter (or any waiter of the monitor)
        waiter = self._spurious_target(rule, kernel)
        return waiter is not None

    def _spurious_target(
        self, rule: FaultRule, kernel: Kernel
    ) -> Optional[Tuple[str, str]]:
        """Resolve a spurious rule to ``(monitor, waiter)``, or ``None``
        when nothing matching is waiting."""
        if rule.thread:
            thread: Optional[SimThread] = kernel.threads.get(rule.thread)
            if thread is None or thread.state is not ThreadState.WAITING:
                return None
            monitor_name = thread.waiting_on
            if monitor_name is None:
                return None
            if rule.monitor is not None and rule.monitor != monitor_name:
                return None
            return (monitor_name, rule.thread)
        assert rule.monitor is not None  # validated by FaultRule
        monitor = kernel.monitors.get(rule.monitor)
        if monitor is None or not monitor.wait_set:
            return None
        # wait_set is FIFO-ordered: index 0 is the longest-waiting thread,
        # a deterministic choice that needs no randomness.
        return (rule.monitor, monitor.wait_set[0])

    # Actions -----------------------------------------------------------

    def _fire(self, rule: FaultRule, kernel: Kernel) -> None:
        if rule.action == "interrupt":
            assert rule.thread is not None
            kernel.interrupt(rule.thread, by="<fault>")
            return
        if rule.action == "timeout":
            assert rule.thread is not None
            thread = kernel.threads.get(rule.thread)
            if thread is not None and thread.state is ThreadState.BLOCKED:
                kernel.expire_acquire(rule.thread, by="<fault>")
            else:
                kernel.expire_wait(rule.thread, by="<fault>")
            return
        target = self._spurious_target(rule, kernel)
        assert target is not None  # checked by _applicable
        monitor_name, waiter = target
        kernel.spurious_wake(monitor_name, waiter)
