"""Workload profiling: where do schedules spend their time?

:func:`profile_workload` runs a workload under N random schedules with
the full observability stack attached — instrumentation sink, span
tracer, and (optionally) the seven online detectors each wrapped in a
:class:`TimedDetector` — and folds everything into one
:class:`ProfileReport`.  The report answers the questions an operator
tuning a campaign actually asks:

* which monitors are hot? (top by contended ticks, then by hold ticks)
* which threads starve? (top by blocked ticks)
* which detector is the expensive one? (wall-clock breakdown per
  detector, as a fraction of total detector time)

``repro profile <workload>`` renders it as tables via the shared
:func:`repro.report.text.render_table`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.detect.online import DetectorPipeline, OnlineDetector, default_detectors
from repro.report.text import render_table
from repro.vm.events import Event
from repro.vm.scheduler import RandomScheduler

from .metrics import Counter, Gauge, MetricsRegistry
from .sink import InstrumentationSink
from .spans import SpanTracer

__all__ = ["TimedDetector", "ProfileReport", "profile_workload"]


class TimedDetector(OnlineDetector):
    """Wrap an online detector, metering its ``on_event`` wall time.

    Delegates the whole :class:`OnlineDetector` protocol; accumulates
    ``wall_seconds`` / ``events`` so the profiler can attribute detector
    cost per analysis.  Timing uses ``perf_counter`` around each call —
    meaningful for *relative* breakdowns, which is all the profiler
    reports.
    """

    def __init__(self, inner: OnlineDetector) -> None:
        self.inner = inner
        self.name = inner.name
        self.wall_seconds = 0.0
        self.events = 0

    def on_event(self, event: Event) -> None:
        start = time.perf_counter()
        self.inner.on_event(event)
        self.wall_seconds += time.perf_counter() - start
        self.events += 1

    def finish(self) -> Any:
        return self.inner.finish()

    def abort_reason(self) -> Optional[str]:
        return self.inner.abort_reason()


@dataclass
class ProfileReport:
    """Aggregated profile of one workload across N schedules."""

    workload: str
    runs: int
    registry: MetricsRegistry
    statuses: Dict[str, int] = field(default_factory=dict)
    #: detector name -> (wall seconds, events) across all runs
    detector_wall: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def _counter_rows(
        self, name: str, label: str, n: int
    ) -> List[Tuple[str, float]]:
        metric = self.registry.get(name)
        if not isinstance(metric, Counter):
            return []
        return [(k, v) for k, v in metric.top(n, label=label) if v > 0]

    def top_monitors(self, n: int = 5) -> List[Tuple[str, float]]:
        """Monitors ranked by contended ticks (ties broken by name)."""
        return self._counter_rows("vm_monitor_contended_ticks_total", "monitor", n)

    def top_threads(self, n: int = 5) -> List[Tuple[str, float]]:
        """Threads ranked by blocked ticks."""
        return self._counter_rows("vm_blocked_ticks_total", "thread", n)

    def detector_breakdown(self) -> List[Tuple[str, float, float]]:
        """``(name, wall_seconds, share)`` rows, most expensive first."""
        total = sum(wall for wall, _ in self.detector_wall.values())
        rows = [
            (name, wall, (wall / total if total else 0.0))
            for name, (wall, _) in self.detector_wall.items()
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows

    def describe(self) -> str:
        lines = [
            f"profile: {self.workload} — {self.runs} runs "
            f"in {self.wall_seconds:.2f}s wall"
        ]
        if self.statuses:
            outcome = ", ".join(
                f"{status}: {count}" for status, count in sorted(self.statuses.items())
            )
            lines.append(f"outcomes: {outcome}")

        hold = self.registry.get("vm_monitor_hold_ticks_total")
        monitor_rows = []
        for name, contended in self.top_monitors():
            held = hold.get(monitor=name) if isinstance(hold, Counter) else 0
            monitor_rows.append([name, f"{int(contended)}", f"{int(held)}"])
        if monitor_rows:
            lines.append("")
            lines.append(
                render_table(
                    ["monitor", "contended ticks", "hold ticks"],
                    monitor_rows,
                    title="top monitors by contention",
                )
            )

        switches = self.registry.get("vm_context_switches_total")
        thread_rows = []
        for name, blocked in self.top_threads():
            ctx = switches.get(thread=name) if isinstance(switches, Counter) else 0
            thread_rows.append([name, f"{int(blocked)}", f"{int(ctx)}"])
        if thread_rows:
            lines.append("")
            lines.append(
                render_table(
                    ["thread", "blocked ticks", "context switches"],
                    thread_rows,
                    title="top threads by blocked time",
                )
            )

        detector_rows = [
            [name, f"{wall * 1000:.2f}", f"{share * 100:.1f}%"]
            for name, wall, share in self.detector_breakdown()
        ]
        if detector_rows:
            lines.append("")
            lines.append(
                render_table(
                    ["detector", "wall ms", "share"],
                    detector_rows,
                    title="detector time breakdown",
                )
            )

        rate = self.registry.get("vm_events_per_second")
        if isinstance(rate, Gauge):
            peak = rate.get()
            if peak is not None:
                lines.append("")
                lines.append(f"peak event rate: {peak:,.0f} events/s")
        return "\n".join(lines)


def profile_workload(
    factory: Callable[..., Any],
    *,
    workload: str = "<factory>",
    runs: int = 20,
    seed_start: int = 0,
    detect: bool = True,
    trace_spans: bool = True,
) -> ProfileReport:
    """Profile ``factory`` under ``runs`` random schedules.

    Each run gets a fresh kernel (``factory(RandomScheduler(seed))``),
    a fresh :class:`InstrumentationSink`, and — when ``detect`` — a
    detector pipeline of :class:`TimedDetector`-wrapped analyses running
    with ``trace_mode="none"`` so profiling cost reflects streaming
    campaigns, not trace storage.
    """
    registry = MetricsRegistry()
    statuses: Dict[str, int] = {}
    detector_wall: Dict[str, Tuple[float, int]] = {}
    run_hist = registry.histogram(
        "run_wall_seconds", "wall-clock duration of profiled runs"
    )
    started = time.perf_counter()
    for offset in range(runs):
        seed = seed_start + offset
        kernel = factory(RandomScheduler(seed))
        tracer = SpanTracer() if trace_spans else None
        sink = InstrumentationSink(tracer=tracer)
        sink.install(kernel)
        timed: List[TimedDetector] = []
        if detect:
            kernel.trace_mode = "none"
            timed = [TimedDetector(d) for d in default_detectors()]
            DetectorPipeline(timed).attach(kernel)
        run_started = time.perf_counter()
        result = kernel.run()
        run_hist.observe(time.perf_counter() - run_started)
        statuses[result.status.value] = statuses.get(result.status.value, 0) + 1
        registry.merge(sink.collect())
        for detector in timed:
            wall, events = detector_wall.get(detector.name, (0.0, 0))
            detector_wall[detector.name] = (
                wall + detector.wall_seconds,
                events + detector.events,
            )
    return ProfileReport(
        workload=workload,
        runs=runs,
        registry=registry,
        statuses=statuses,
        detector_wall=detector_wall,
        wall_seconds=time.perf_counter() - started,
    )
