"""The instrumentation sink: kernel event bus -> metrics registry.

:class:`InstrumentationSink` subscribes to a kernel's event bus (the same
``subscribe`` hook the streaming detector pipeline uses) and derives the
core scheduler/monitor series while the run executes:

* ``vm_events_total`` / ``vm_steps_total`` and the wall-clock
  ``vm_events_per_second`` gauge;
* ``vm_context_switches_total`` / ``vm_blocked_ticks_total`` /
  ``vm_waiting_ticks_total`` per thread — read directly from the
  kernel's native counters (:meth:`repro.vm.kernel.Kernel.thread_stats`),
  not re-derived from events;
* ``vm_monitor_hold_ticks_total`` / ``vm_monitor_contended_ticks_total``
  / ``vm_monitor_acquisitions_total`` / ``vm_notify_lost_total`` per
  monitor;
* ``vm_entry_queue_depth_peak`` / ``vm_wait_queue_depth_peak`` per
  monitor (gauges, merged by max across runs).

Cost model: when no sink is installed the kernel's emit loop iterates an
empty list — observability off is free.  When installed, the handlers
subscribe kind-filtered (``Kernel.subscribe(handler, kinds=...)``), so
the (majority) event kinds that carry no monitor state cost one dict
lookup inside the emit loop and never enter sink code; the
monitor-protocol minority runs a short handler.  Event counting and the
per-thread counters cost nothing because the kernel maintains them
natively (``events_emitted`` / ``thread_stats``).  Ext-I
(``benchmarks/test_obs_overhead.py``) keeps this honest.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.vm.events import Event, EventKind

from .metrics import MetricsRegistry, MetricsSnapshot
from .spans import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.kernel import Kernel
    from repro.vm.scheduler import Scheduler

__all__ = ["InstrumentationSink", "ObservedFactory"]


class InstrumentationSink:
    """Streams kernel events into a :class:`MetricsRegistry`.

    Usage::

        sink = InstrumentationSink()
        sink.install(kernel)          # before kernel.run()
        result = kernel.run()
        registry = sink.collect()     # finalize + pull native counters

    ``collect`` closes still-open monitor holds (a deadlocked run holds
    its locks at quiescence) and folds in the kernel's native per-thread
    counters; call it once, after the run.

    Args:
        registry: fold into an existing registry (default: fresh).
        tracer: optional :class:`SpanTracer`; when given, every completed
            outermost monitor hold is recorded as a ``monitor-hold`` span
            (name + per-monitor label), giving hold-time histograms in
            both clocks for free.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer
        self.events_seen = 0
        self._kernel: Optional["Kernel"] = None
        self._wall_start: Optional[float] = None
        self._seq_start = 0
        self._collected = False
        # live derivation state, all plain dicts for speed
        self._entry_depth: Dict[str, int] = {}
        self._entry_peak: Dict[str, int] = {}
        self._wait_depth: Dict[str, int] = {}
        self._wait_peak: Dict[str, int] = {}
        self._open_holds: Dict[Tuple[str, str], int] = {}
        self._hold_ticks: Dict[str, int] = {}
        self._contended_ticks: Dict[str, int] = {}
        self._acquisitions: Dict[str, int] = {}
        self._lost_notifies: Dict[str, int] = {}
        self._close_hold, self._handlers = self._build_handlers()

    def install(self, kernel: "Kernel") -> "InstrumentationSink":
        """Subscribe to the kernel's event bus; returns self.

        Each monitor-protocol handler subscribes kind-filtered, so the
        (majority) events without a handler never reach sink code — their
        whole cost is the kernel-side filter lookup.  Event counting rides
        the kernel's native seq counter instead of a Python-side
        increment.
        """
        self._kernel = kernel
        self._wall_start = time.perf_counter()
        self._seq_start = kernel.events_emitted
        for kind, handler in self._handlers.items():
            kernel.subscribe(handler, kinds=(kind,))
        if self.tracer is not None:
            self.tracer.attach(kernel)
        return self

    def reset(self) -> "InstrumentationSink":
        """Return to the just-constructed state for the next run.

        The handler closures bind the state dicts (and the tracer) as
        locals, so the dicts are cleared *in place*; only a tracer forces
        a handler rebuild.  The registry is rebound fresh — collect()
        reads it through the attribute, and the previous run's snapshot
        stays valid in the old registry object.
        """
        self.registry = MetricsRegistry()
        self.events_seen = 0
        self._kernel = None
        self._wall_start = None
        self._seq_start = 0
        self._collected = False
        for state in (
            self._entry_depth,
            self._entry_peak,
            self._wait_depth,
            self._wait_peak,
            self._open_holds,
            self._hold_ticks,
            self._contended_ticks,
            self._acquisitions,
            self._lost_notifies,
        ):
            state.clear()
        if self.tracer is not None:
            self.tracer = SpanTracer()
            self._close_hold, self._handlers = self._build_handlers()
        return self

    # -- the hot path (standalone form for feeding a sink without a
    # kernel; install() wires the handlers kind-filtered instead) ----------

    def on_event(self, event: Event) -> None:
        self.events_seen += 1
        handler = self._handlers.get(event.kind)
        if handler is not None:
            handler(event)

    # -- monitor-protocol handlers ----------------------------------------

    def _build_handlers(
        self,
    ) -> Tuple[
        Callable[[str, str, int], None], Dict[EventKind, Callable[[Event], None]]
    ]:
        # Closures over the state dicts: these run once per monitor event,
        # and binding the dicts as locals drops the repeated ``self._x``
        # attribute lookups from the hot path.
        entry_depth = self._entry_depth
        entry_peak = self._entry_peak
        wait_depth = self._wait_depth
        wait_peak = self._wait_peak
        open_holds = self._open_holds
        hold_ticks = self._hold_ticks
        contended_ticks = self._contended_ticks
        acquisitions = self._acquisitions
        lost_notifies = self._lost_notifies
        tracer = self.tracer

        def on_request(event: Event) -> None:
            monitor = event.monitor
            depth = entry_depth.get(monitor, 0) + 1
            entry_depth[monitor] = depth
            if depth > entry_peak.get(monitor, 0):
                entry_peak[monitor] = depth

        def on_acquire(event: Event) -> None:
            monitor = event.monitor
            depth = entry_depth.get(monitor, 0)
            if depth > 0:
                entry_depth[monitor] = depth - 1
            detail = event.detail
            if detail.get("reentrant"):
                return  # deeper hold of an already-open outermost hold
            acquisitions[monitor] = acquisitions.get(monitor, 0) + 1
            blocked_for = detail.get("blocked_for", 0)
            if blocked_for:
                contended_ticks[monitor] = (
                    contended_ticks.get(monitor, 0) + blocked_for
                )
            open_holds[(event.thread, monitor)] = event.time

        def close_hold(thread: str, monitor: str, now: int) -> None:
            start = open_holds.pop((thread, monitor), None)
            if start is None:
                return
            hold_ticks[monitor] = hold_ticks.get(monitor, 0) + (now - start)
            if tracer is not None:
                span = tracer.start("monitor-hold", monitor=monitor)
                span.vm_start = start
                tracer.end(span)

        def on_release(event: Event) -> None:
            if not event.detail.get("reentrant"):
                close_hold(event.thread, event.monitor, event.time)

        def on_wait(event: Event) -> None:
            # wait() releases the lock fully: the outermost hold ends here.
            monitor = event.monitor
            close_hold(event.thread, monitor, event.time)
            depth = wait_depth.get(monitor, 0) + 1
            wait_depth[monitor] = depth
            if depth > wait_peak.get(monitor, 0):
                wait_peak[monitor] = depth

        def on_notified(event: Event) -> None:
            # The waiter leaves the wait set and re-enters the entry set
            # (Figure-1 T5: D -> B) without a fresh MONITOR_REQUEST.
            monitor = event.monitor
            depth = wait_depth.get(monitor, 0)
            if depth > 0:
                wait_depth[monitor] = depth - 1
            entry = entry_depth.get(monitor, 0) + 1
            entry_depth[monitor] = entry
            if entry > entry_peak.get(monitor, 0):
                entry_peak[monitor] = entry

        def on_notify(event: Event) -> None:
            if not event.detail.get("woken"):
                monitor = event.monitor
                lost_notifies[monitor] = lost_notifies.get(monitor, 0) + 1

        return close_hold, {
            EventKind.MONITOR_REQUEST: on_request,
            EventKind.MONITOR_ACQUIRE: on_acquire,
            EventKind.MONITOR_RELEASE: on_release,
            EventKind.MONITOR_WAIT: on_wait,
            EventKind.MONITOR_NOTIFIED: on_notified,
            EventKind.NOTIFY: on_notify,
            EventKind.NOTIFY_ALL: on_notify,
        }

    # -- finalization ------------------------------------------------------

    def collect(self) -> MetricsRegistry:
        """Finalize the run's series into the registry and return it.

        Idempotent per run: a second call returns the registry unchanged.
        """
        if self._collected:
            return self.registry
        self._collected = True
        kernel = self._kernel
        if kernel is not None:
            self.events_seen = kernel.events_emitted - self._seq_start
        now = kernel.time if kernel is not None else 0
        # A deadlocked/stuck run still holds monitors at quiescence: count
        # the hold up to the end of virtual time.
        for thread, monitor in list(self._open_holds):
            self._close_hold(thread, monitor, now)

        registry = self.registry
        registry.counter("vm_events_total", "events emitted by the kernel").inc(
            self.events_seen
        )
        if self._wall_start is not None:
            elapsed = max(time.perf_counter() - self._wall_start, 1e-9)
            registry.gauge(
                "vm_events_per_second",
                "wall-clock event rate of the run (merged: peak across runs)",
            ).set_max(self.events_seen / elapsed)
        if kernel is not None:
            registry.counter("vm_steps_total", "kernel scheduling steps").inc(
                kernel.steps
            )
            switches = registry.counter(
                "vm_context_switches_total",
                "times a thread was scheduled after a different thread",
            )
            blocked = registry.counter(
                "vm_blocked_ticks_total",
                "virtual time threads spent blocked in entry sets",
            )
            waiting = registry.counter(
                "vm_waiting_ticks_total",
                "virtual time threads spent in wait sets (pre-wake)",
            )
            for name, stats in kernel.thread_stats().items():
                if stats["context_switches"]:
                    switches.inc(stats["context_switches"], thread=name)
                if stats["blocked_ticks"]:
                    blocked.inc(stats["blocked_ticks"], thread=name)
                if stats["waiting_ticks"]:
                    waiting.inc(stats["waiting_ticks"], thread=name)

        acquisitions = registry.counter(
            "vm_monitor_acquisitions_total", "outermost monitor acquisitions"
        )
        for monitor, count in self._acquisitions.items():
            acquisitions.inc(count, monitor=monitor)
        hold = registry.counter(
            "vm_monitor_hold_ticks_total",
            "virtual time monitors were held (outermost holds)",
        )
        for monitor, ticks in self._hold_ticks.items():
            hold.inc(ticks, monitor=monitor)
        contended = registry.counter(
            "vm_monitor_contended_ticks_total",
            "virtual time threads blocked waiting for each monitor",
        )
        for monitor, ticks in self._contended_ticks.items():
            contended.inc(ticks, monitor=monitor)
        lost = registry.counter(
            "vm_notify_lost_total", "notify/notifyAll calls that woke nobody"
        )
        for monitor, count in self._lost_notifies.items():
            lost.inc(count, monitor=monitor)
        entry_peak = registry.gauge(
            "vm_entry_queue_depth_peak", "peak entry-set depth per monitor"
        )
        for monitor, peak in self._entry_peak.items():
            entry_peak.set_max(peak, monitor=monitor)
        wait_peak = registry.gauge(
            "vm_wait_queue_depth_peak", "peak wait-set depth per monitor"
        )
        for monitor, peak in self._wait_peak.items():
            wait_peak.set_max(peak, monitor=monitor)
        if self.tracer is not None:
            registry.merge(self.tracer.registry)
        return registry

    def snapshot(self) -> MetricsSnapshot:
        """``collect()`` projected to the picklable snapshot form."""
        return self.collect().snapshot()


class ObservedFactory:
    """Wrap a program factory so every kernel it builds carries a fresh
    :class:`InstrumentationSink` (the observability twin of
    :class:`repro.detect.online.PipelineFactory`).

    Satisfies the engine's ``ProgramFactory`` contract; the sink of the
    most recently built kernel is at :attr:`sink` (runs are sequential
    within a worker, so one slot suffices).
    """

    def __init__(
        self,
        factory: Callable[["Scheduler"], "Kernel"],
        *,
        trace_spans: bool = False,
    ) -> None:
        self.factory = factory
        self.trace_spans = trace_spans
        self.sink: Optional[InstrumentationSink] = None

    def __call__(self, scheduler: "Scheduler") -> "Kernel":
        kernel = self.factory(scheduler)
        tracer = SpanTracer() if self.trace_spans else None
        self.sink = InstrumentationSink(tracer=tracer)
        self.sink.install(kernel)
        return kernel
