"""Spans: durations stamped in wall-clock *and* VM logical time.

A :class:`Span` brackets one unit of work — a whole run, one scheduling
decision, one detector step, one monitor hold — and records both clocks
at entry and exit:

* **wall time** (``time.perf_counter``) — what the operator pays;
* **VM virtual time** (one tick per kernel scheduling step) — what the
  simulated program experienced, schedule-deterministic and therefore
  reproducible across machines;
* **abstract clock time** (ConAn ticks) — the testing clock, for spans
  that cross ``Tick``/``AwaitTime`` boundaries.

Because the VM clocks are deterministic for a fixed schedule, span tick
durations are exact replay-stable measurements: a monitor-hold span of 14
ticks is 14 ticks on every machine, while its wall duration is noise.
The :class:`SpanTracer` aggregates finished spans into a registry
histogram per span name, so tracing feeds the same merge/export pipeline
as every other metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.kernel import Kernel

__all__ = ["Span", "SpanTracer", "TICK_BUCKETS"]

#: Bucket bounds for tick-valued histograms (VM steps are small integers).
TICK_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


@dataclass
class Span:
    """One timed unit of work.  Create via :meth:`SpanTracer.start`."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    wall_start: float = 0.0
    wall_end: Optional[float] = None
    vm_start: int = 0
    vm_end: Optional[int] = None
    clock_start: int = 0
    clock_end: Optional[int] = None

    @property
    def finished(self) -> bool:
        return self.wall_end is not None

    @property
    def wall_seconds(self) -> float:
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    @property
    def vm_ticks(self) -> int:
        end = self.vm_end if self.vm_end is not None else self.vm_start
        return end - self.vm_start

    @property
    def clock_ticks(self) -> int:
        end = self.clock_end if self.clock_end is not None else self.clock_start
        return end - self.clock_start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "wall_seconds": self.wall_seconds,
            "vm_ticks": self.vm_ticks,
            "clock_ticks": self.clock_ticks,
        }


class SpanTracer:
    """Creates spans and aggregates their durations.

    The tracer reads the VM clocks from an attached kernel (``attach``),
    so spans started before a kernel exists simply record zero ticks.
    ``keep_spans`` retains finished span objects for inspection (tests,
    the profiler); high-volume callers leave it off and rely on the
    histogram aggregation, which is constant-space.
    """

    def __init__(self, keep_spans: bool = False) -> None:
        self.keep_spans = keep_spans
        self.finished: List[Span] = []
        self._kernel: Optional["Kernel"] = None
        self.registry = MetricsRegistry()
        self._wall_hist: Histogram = self.registry.histogram(
            "span_wall_seconds", "wall-clock span durations by span name"
        )
        self._tick_hist: Histogram = self.registry.histogram(
            "span_vm_ticks",
            "VM virtual-time span durations by span name",
            buckets=TICK_BUCKETS,
        )

    def attach(self, kernel: "Kernel") -> "SpanTracer":
        """Read VM/abstract clocks from this kernel; returns self."""
        self._kernel = kernel
        return self

    def _clocks(self) -> Tuple[int, int]:
        if self._kernel is None:
            return (0, 0)
        return (self._kernel.time, self._kernel.clock_time)

    def start(self, name: str, **labels: Any) -> Span:
        vm_now, clock_now = self._clocks()
        return Span(
            name=name,
            labels={str(k): str(v) for k, v in labels.items()},
            wall_start=time.perf_counter(),
            vm_start=vm_now,
            clock_start=clock_now,
        )

    def end(self, span: Span) -> Span:
        span.wall_end = time.perf_counter()
        span.vm_end, span.clock_end = self._clocks()
        self._wall_hist.observe(span.wall_seconds, span=span.name)
        self._tick_hist.observe(span.vm_ticks, span=span.name)
        if self.keep_spans:
            self.finished.append(span)
        return span

    def span(self, name: str, **labels: Any) -> "_SpanContext":
        """``with tracer.span("run"): ...`` — start/end as a context."""
        return _SpanContext(self, name, labels)

    # -- queries -----------------------------------------------------------

    def wall_seconds(self, name: str) -> float:
        return self._wall_hist.total(span=name)

    def vm_ticks(self, name: str) -> float:
        return self._tick_hist.total(span=name)

    def count(self, name: str) -> int:
        return self._wall_hist.count(span=name)


class _SpanContext:
    def __init__(self, tracer: SpanTracer, name: str, labels: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._labels = labels
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start(self._name, **self._labels)
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        if self.span is not None:
            self._tracer.end(self.span)
