"""Mergeable metrics: counters, gauges, and histograms with label series.

The observability layer's core data structure is the
:class:`MetricsRegistry` — a named collection of metric families, each
holding one numeric series per label set.  Registries follow the same
merge discipline as :class:`~repro.coverage.matrix.CoverageMatrix`: a
campaign worker builds one per run, projects it to a plain-dict
:class:`MetricsSnapshot` that crosses the process boundary inside a
``RunSummary``, and the orchestrator folds every snapshot into a single
campaign-level registry.  Merging is associative and order-independent
for counters and histograms (addition) and uses an explicit aggregation
mode for gauges (max by default: a gauge merged across runs reports the
peak, e.g. the deepest wait queue any schedule produced).

Everything is JSON- and pickle-safe by construction: label sets are
sorted tuples of string pairs, values are ints/floats, and the snapshot
form round-trips through :func:`MetricsSnapshot.to_dict` /
:func:`MetricsSnapshot.from_dict` losslessly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
]

#: A label set, normalized: sorted ``(key, value)`` string pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram buckets — tuned for tick/second durations spanning
#: sub-millisecond VM steps up to multi-second runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0,
)


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base of the three metric families.

    Attributes:
        name: metric name (``snake_case``; exporters append suffixes).
        help: one-line human description for the exporters.
    """

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def series(self) -> Dict[LabelSet, Any]:
        raise NotImplementedError

    def merge(self, other: "Metric") -> None:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _labelset(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def get(self, **labels: Any) -> float:
        return self._series.get(_labelset(labels), 0)

    @property
    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> Dict[LabelSet, float]:
        return dict(self._series)

    def top(self, n: int = 3, label: Optional[str] = None) -> List[Tuple[str, float]]:
        """The ``n`` largest series as ``(label_value, value)`` pairs.

        ``label`` selects which label key to report (default: the first
        key of each label set, which is the only key for single-label
        counters like per-monitor or per-thread series).
        """
        rows = []
        for labels, value in self._series.items():
            if not labels:
                name = ""
            elif label is not None:
                name = dict(labels).get(label, "")
            else:
                name = labels[0][1]
            rows.append((name, value))
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[:n]

    def merge(self, other: "Metric") -> None:
        assert isinstance(other, Counter)
        for key, value in other._series.items():
            self._series[key] = self._series.get(key, 0) + value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(labels), "value": value}
                for labels, value in sorted(self._series.items())
            ],
        }


class Gauge(Metric):
    """A point-in-time value per label set.

    ``agg`` decides how two gauges merge across runs/workers: ``"max"``
    (default — peaks survive), ``"min"``, ``"sum"``, or ``"last"``.
    """

    kind = "gauge"
    _AGGS = ("max", "min", "sum", "last")

    def __init__(self, name: str, help: str = "", agg: str = "max") -> None:
        super().__init__(name, help)
        if agg not in self._AGGS:
            raise ValueError(f"agg must be one of {self._AGGS}, got {agg!r}")
        self.agg = agg
        self._series: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_labelset(labels)] = value

    def set_max(self, value: float, **labels: Any) -> None:
        """Keep the running maximum (the cheap way to track a peak)."""
        key = _labelset(labels)
        if value > self._series.get(key, float("-inf")):
            self._series[key] = value

    def get(self, **labels: Any) -> Optional[float]:
        return self._series.get(_labelset(labels))

    def series(self) -> Dict[LabelSet, float]:
        return dict(self._series)

    def _combine(self, mine: float, theirs: float) -> float:
        if self.agg == "max":
            return max(mine, theirs)
        if self.agg == "min":
            return min(mine, theirs)
        if self.agg == "sum":
            return mine + theirs
        return theirs  # "last"

    def merge(self, other: "Metric") -> None:
        assert isinstance(other, Gauge)
        for key, value in other._series.items():
            if key in self._series:
                self._series[key] = self._combine(self._series[key], value)
            else:
                self._series[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "agg": self.agg,
            "series": [
                {"labels": dict(labels), "value": value}
                for labels, value in sorted(self._series.items())
            ],
        }


@dataclass
class _HistSeries:
    counts: List[int]
    sum: float = 0.0
    count: int = 0


class Histogram(Metric):
    """Cumulative-bucket distribution per label set (Prometheus-style).

    ``buckets`` are the upper bounds (``le``); an implicit ``+Inf``
    bucket always exists, so ``observe`` never loses a sample.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: Dict[LabelSet, _HistSeries] = {}

    def _get_series(self, labels: Dict[str, Any]) -> _HistSeries:
        key = _labelset(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistSeries(counts=[0] * (len(self.buckets) + 1))
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        series = self._get_series(labels)
        series.counts[bisect.bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: Any) -> int:
        series = self._series.get(_labelset(labels))
        return series.count if series else 0

    def total(self, **labels: Any) -> float:
        series = self._series.get(_labelset(labels))
        return series.sum if series else 0.0

    def mean(self, **labels: Any) -> float:
        series = self._series.get(_labelset(labels))
        if not series or not series.count:
            return 0.0
        return series.sum / series.count

    def series(self) -> Dict[LabelSet, _HistSeries]:
        return dict(self._series)

    def merge(self, other: "Metric") -> None:
        assert isinstance(other, Histogram)
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        for key, theirs in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = _HistSeries(
                    counts=list(theirs.counts), sum=theirs.sum, count=theirs.count
                )
            else:
                for i, c in enumerate(theirs.counts):
                    mine.counts[i] += c
                mine.sum += theirs.sum
                mine.count += theirs.count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(labels),
                    "counts": list(series.counts),
                    "sum": series.sum,
                    "count": series.count,
                }
                for labels, series in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """A named collection of metrics with campaign-merge semantics.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent for
    matching declarations), so instrumentation sites can declare their
    metrics at use and still share one family per name.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> Iterable[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if existing.kind != metric.kind:
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}, not {metric.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", agg: str = "max") -> Gauge:
        return self._register(Gauge(name, help, agg=agg))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets=buckets))  # type: ignore[return-value]

    # -- merge / snapshot --------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of ``other`` into this registry (add counters
        and histograms, aggregate gauges by their declared mode)."""
        for metric in other.metrics():
            mine = self._metrics.get(metric.name)
            if mine is None:
                self._metrics[metric.name] = _metric_from_dict(metric.to_dict())
            else:
                mine.merge(metric)

    def merge_snapshot(self, snapshot: "MetricsSnapshot") -> None:
        self.merge(snapshot.to_registry())

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot(
            metrics=tuple(metric.to_dict() for metric in self.metrics())
        )

    def to_dict(self) -> Dict[str, Any]:
        return self.snapshot().to_dict()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        return MetricsSnapshot.from_dict(payload).to_registry()


def _metric_from_dict(payload: Dict[str, Any]) -> Metric:
    kind = payload.get("type")
    name = str(payload.get("name", ""))
    help_text = str(payload.get("help", ""))
    if kind == "counter":
        counter = Counter(name, help_text)
        for row in payload.get("series", ()):
            counter.inc(row["value"], **row.get("labels", {}))
        return counter
    if kind == "gauge":
        gauge = Gauge(name, help_text, agg=str(payload.get("agg", "max")))
        for row in payload.get("series", ()):
            gauge.set(row["value"], **row.get("labels", {}))
        return gauge
    if kind == "histogram":
        histogram = Histogram(
            name, help_text, buckets=payload.get("buckets", DEFAULT_BUCKETS)
        )
        for row in payload.get("series", ()):
            key = _labelset(row.get("labels", {}))
            histogram._series[key] = _HistSeries(
                counts=[int(c) for c in row["counts"]],
                sum=float(row.get("sum", 0.0)),
                count=int(row.get("count", 0)),
            )
        return histogram
    raise ValueError(f"unknown metric type {kind!r} for {name!r}")


@dataclass(frozen=True)
class MetricsSnapshot:
    """The plain-data projection of a registry.

    This is the form that rides inside a ``RunSummary`` across the
    worker/orchestrator process boundary and inside campaign journal
    lines: a tuple of per-metric dicts, nothing but JSON scalars inside.
    """

    metrics: Tuple[Dict[str, Any], ...] = ()

    @property
    def empty(self) -> bool:
        return not self.metrics

    def to_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        for payload in self.metrics:
            registry._metrics[str(payload["name"])] = _metric_from_dict(payload)
        return registry

    def to_dict(self) -> Dict[str, Any]:
        return {"metrics": [dict(m) for m in self.metrics]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsSnapshot":
        return cls(metrics=tuple(payload.get("metrics", ())))

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "MetricsSnapshot":
        return registry.snapshot()
