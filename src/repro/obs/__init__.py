"""repro.obs — metrics, spans, and live telemetry.

The observability layer of the reproduction: a mergeable metrics
registry (:mod:`.metrics`), dual-clock span tracing (:mod:`.spans`), the
kernel-event instrumentation sink (:mod:`.sink`), JSONL/Prometheus
exporters (:mod:`.export`), and the workload profiler (:mod:`.profile`).
Streaming campaign telemetry — frames, the live aggregator, the embedded
HTTP endpoint, the terminal dashboard, and the Perfetto trace export —
lives in the :mod:`.live` subpackage (imported on demand, not here, so
``repro.obs`` itself stays free of HTTP machinery).

Design rule: observability is *pull*, never *push* — nothing in the VM
or engine imports this package at module level except through the
factory wrappers a caller explicitly installs, and an uninstrumented
kernel pays nothing.
"""

from .export import (
    load_metrics_jsonl,
    to_prometheus,
    write_metrics_jsonl,
    write_prometheus,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from .profile import ProfileReport, TimedDetector, profile_workload
from .sink import InstrumentationSink, ObservedFactory
from .spans import TICK_BUCKETS, Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "Span",
    "SpanTracer",
    "TICK_BUCKETS",
    "InstrumentationSink",
    "ObservedFactory",
    "write_metrics_jsonl",
    "load_metrics_jsonl",
    "to_prometheus",
    "write_prometheus",
    "ProfileReport",
    "TimedDetector",
    "profile_workload",
]
