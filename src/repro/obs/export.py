"""Exporters: metrics JSONL (lossless) and Prometheus text (interop).

Two output formats, two jobs:

* **metrics JSONL** (``write_metrics_jsonl`` / ``load_metrics_jsonl``) is
  the lossless archival form.  Like the campaign journal it opens with a
  header line (``{"format": "repro-metrics", "version": 1, ...}``)
  followed by one JSON object per metric family — exactly the
  ``Metric.to_dict`` payloads, so a loaded file reconstructs a registry
  that merges with live ones.  Loading tolerates a torn final line (the
  writer may have been killed mid-write).

* **Prometheus text exposition** (``to_prometheus`` / a ``.prom`` file
  via ``write_prometheus``) is for dashboards: the standard
  ``# HELP`` / ``# TYPE`` / sample-line format, with histogram buckets
  rendered cumulatively and the implicit ``+Inf`` bucket made explicit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "write_metrics_jsonl",
    "load_metrics_jsonl",
    "to_prometheus",
    "write_prometheus",
]

FORMAT_NAME = "repro-metrics"
FORMAT_VERSION = 1


# -- JSONL -----------------------------------------------------------------


def write_metrics_jsonl(
    registry: MetricsRegistry,
    path: Union[str, Path],
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``registry`` to ``path`` as header + one line per metric.

    ``meta`` adds context fields to the header (campaign id, run counts,
    …); it may not override ``format``/``version``.
    """
    path = Path(path)
    header: Dict[str, Any] = dict(meta or {})
    header["format"] = FORMAT_NAME
    header["version"] = FORMAT_VERSION
    lines = [json.dumps(header, sort_keys=True)]
    for metric in registry.metrics():
        lines.append(json.dumps(metric.to_dict(), sort_keys=True))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_metrics_jsonl(
    path: Union[str, Path],
) -> Tuple[MetricsRegistry, Dict[str, Any]]:
    """Read a metrics JSONL file back into a fresh registry.

    Returns ``(registry, header)``.  Raises ``ValueError`` on a missing
    or foreign header; a torn (half-written) final line is dropped.
    """
    path = Path(path)
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    if not raw_lines:
        raise ValueError(f"{path}: empty metrics file")
    try:
        header = json.loads(raw_lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: unreadable metrics header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise ValueError(f"{path}: not a {FORMAT_NAME} file")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported {FORMAT_NAME} version {header.get('version')!r}"
        )
    payloads: List[Dict[str, Any]] = []
    for index, line in enumerate(raw_lines[1:], start=2):
        if not line.strip():
            continue
        try:
            payloads.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if index == len(raw_lines):  # torn tail: writer died mid-line
                break
            raise ValueError(f"{path}:{index}: corrupt metrics line: {exc}") from exc
    from .metrics import MetricsSnapshot

    registry = MetricsSnapshot(metrics=tuple(payloads)).to_registry()
    return registry, header


# -- Prometheus text exposition --------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    out: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            out.append(f"# HELP {metric.name} {metric.help}")
        out.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in sorted(metric.series().items()):
                out.append(
                    f"{metric.name}{_render_labels(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, series in sorted(metric.series().items()):
                cumulative = 0
                for bound, count in zip(metric.buckets, series.counts):
                    cumulative += count
                    le = 'le="%s"' % _format_value(float(bound))
                    out.append(
                        f"{metric.name}_bucket{_render_labels(labels, le)} "
                        f"{cumulative}"
                    )
                inf = 'le="+Inf"'
                out.append(
                    f"{metric.name}_bucket{_render_labels(labels, inf)} "
                    f"{series.count}"
                )
                out.append(
                    f"{metric.name}_sum{_render_labels(labels)} "
                    f"{_format_value(series.sum)}"
                )
                out.append(
                    f"{metric.name}_count{_render_labels(labels)} {series.count}"
                )
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write the text exposition to ``path`` atomically.

    A node-exporter-style scraper may read the file at any moment (a
    campaign rewrites it while textfile collectors poll), so the text is
    staged in a sibling temp file and swapped in with ``os.replace`` — a
    reader sees the old complete file or the new one, never a torn tail.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    staging.write_text(to_prometheus(registry), encoding="utf-8")
    try:
        os.replace(staging, path)
    except OSError:
        staging.unlink(missing_ok=True)
        raise
    return path
