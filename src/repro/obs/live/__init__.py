"""repro.obs.live — streaming campaign telemetry.

The live half of the observability layer: compact
:class:`~repro.obs.live.frames.TelemetryFrame` messages streamed from
campaign workers, an incrementally merged
:class:`~repro.obs.live.aggregate.LiveAggregator` whose state is
byte-for-byte the post-hoc journal merge, an embedded stdlib HTTP
endpoint (:class:`~repro.obs.live.server.TelemetryServer` — ``/status``
JSON, ``/metrics`` Prometheus, ``/events`` SSE), a terminal dashboard
(:mod:`~repro.obs.live.dash`), and a Perfetto-loadable Chrome
trace-event export of single runs (:mod:`~repro.obs.live.chrome`).

Same design rule as :mod:`repro.obs`: pull, never push — the engine only
feeds a :class:`LiveAggregator` that a caller explicitly passed in, and a
campaign without one pays nothing.
"""

from .aggregate import LiveAggregator, ShardRow, attach_campaign_info
from .chrome import to_chrome_trace, write_chrome_trace
from .dash import LocalDashboard, fetch_status, render_dashboard, run_dashboard
from .frames import TelemetryFrame
from .server import TelemetryServer, parse_serve_address

__all__ = [
    "TelemetryFrame",
    "LiveAggregator",
    "ShardRow",
    "attach_campaign_info",
    "TelemetryServer",
    "parse_serve_address",
    "render_dashboard",
    "fetch_status",
    "run_dashboard",
    "LocalDashboard",
    "to_chrome_trace",
    "write_chrome_trace",
]
