"""Telemetry frames: the compact streaming currency of a live campaign.

A :class:`TelemetryFrame` is what a campaign worker posts to the
orchestrator queue for every completed run and every shard-lifecycle
transition — a :class:`~repro.testing.explorer.RunSummary` (when the
frame carries a run) plus the shard-local counters the summary alone
cannot provide: how many runs this shard has completed so far, how many
of them timed out, and which launch attempt is executing.  Frames are
plain-dict serializable, so they ride the existing multiprocessing
plumbing unchanged and journal-compatible (the embedded summary dict is
byte-identical to the pre-frame ``("run", ...)`` payload).

The orchestrator's :class:`~repro.obs.live.aggregate.LiveAggregator`
consumes frames incrementally; the SSE stream re-publishes an annotated
projection of each one (see :mod:`repro.obs.live.server`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.testing.explorer import RunSummary

__all__ = [
    "FRAME_RUN",
    "FRAME_SHARD_DONE",
    "FRAME_SHARD_FAILED",
    "TelemetryFrame",
]

#: Frame kinds.  Run frames carry a summary; shard frames carry the
#: lifecycle transition of the emitting shard.
FRAME_RUN = "run"
FRAME_SHARD_DONE = "shard-done"
FRAME_SHARD_FAILED = "shard-failed"

_KINDS = (FRAME_RUN, FRAME_SHARD_DONE, FRAME_SHARD_FAILED)


@dataclass(frozen=True)
class TelemetryFrame:
    """One telemetry message from a campaign worker.

    Attributes:
        kind: one of :data:`FRAME_RUN`, :data:`FRAME_SHARD_DONE`,
            :data:`FRAME_SHARD_FAILED`.
        shard: id of the emitting shard.
        runs: runs this shard has completed so far (including the run
            this frame carries, for run frames).
        timeouts: how many of those runs ended with TIMEOUT status.
        classes: failure-class codes detected by the carried run.
        attempt: 1-based launch attempt of the shard (requeues bump it).
        exhausted: for shard-done frames, whether the shard enumerated
            its whole schedule subspace.
        error: for shard-failed frames, the worker's error text.
        summary: the carried run (run frames only).
    """

    kind: str
    shard: str
    runs: int = 0
    timeouts: int = 0
    classes: Tuple[str, ...] = ()
    attempt: int = 1
    exhausted: bool = False
    error: str = ""
    summary: Optional[RunSummary] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown frame kind {self.kind!r}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_run(
        cls,
        shard: str,
        summary: RunSummary,
        runs: int,
        timeouts: int = 0,
        attempt: int = 1,
    ) -> "TelemetryFrame":
        return cls(
            kind=FRAME_RUN,
            shard=shard,
            runs=runs,
            timeouts=timeouts,
            classes=summary.detected_classes,
            attempt=attempt,
            summary=summary,
        )

    @classmethod
    def for_shard_done(
        cls, shard: str, runs: int, exhausted: bool, attempt: int = 1
    ) -> "TelemetryFrame":
        return cls(
            kind=FRAME_SHARD_DONE,
            shard=shard,
            runs=runs,
            exhausted=exhausted,
            attempt=attempt,
        )

    @classmethod
    def for_shard_failed(
        cls, shard: str, error: str, attempt: int = 1
    ) -> "TelemetryFrame":
        return cls(
            kind=FRAME_SHARD_FAILED, shard=shard, error=error, attempt=attempt
        )

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict projection (picklable and JSON-safe)."""
        payload: Dict[str, Any] = {"kind": self.kind, "shard": self.shard}
        if self.runs:
            payload["runs"] = self.runs
        if self.timeouts:
            payload["timeouts"] = self.timeouts
        if self.classes:
            payload["classes"] = list(self.classes)
        if self.attempt != 1:
            payload["attempt"] = self.attempt
        if self.exhausted:
            payload["exhausted"] = True
        if self.error:
            payload["error"] = self.error
        if self.summary is not None:
            payload["summary"] = self.summary.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TelemetryFrame":
        raw_summary = payload.get("summary")
        summary = (
            RunSummary.from_dict(dict(raw_summary))
            if raw_summary is not None
            else None
        )
        return cls(
            kind=str(payload["kind"]),
            shard=str(payload["shard"]),
            runs=int(payload.get("runs", 0)),
            timeouts=int(payload.get("timeouts", 0)),
            classes=tuple(str(c) for c in payload.get("classes", ())),
            attempt=int(payload.get("attempt", 1)),
            exhausted=bool(payload.get("exhausted", False)),
            error=str(payload.get("error", "")),
            summary=summary,
        )
