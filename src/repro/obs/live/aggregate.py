"""Incremental campaign state, safe to read while the campaign runs.

The campaign orchestrator owns one :class:`LiveAggregator` and feeds it
exactly the stream its result-building ``_Aggregator`` consumes: one
``note_run`` per merged summary (with the orchestrator's duplicate
verdict), plus shard-lifecycle notes.  Because the live aggregator
applies the *same* fold in the *same* order — unique-only class counts,
unique-only :class:`~repro.obs.metrics.MetricsSnapshot` merges — its
final state is byte-for-byte the post-hoc journal-merged summary; the
tests pin that equality, including under ``--resume``.

Everything is guarded by one lock so the embedded HTTP server's handler
threads (``/status``, ``/metrics``, SSE) can read mid-campaign without
torn counters.  SSE subscribers receive one compact dict per frame via
bounded queues; a slow consumer drops frames rather than stalling the
orchestrator.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.obs.metrics import Counter as MetricsCounter
from repro.obs.metrics import Gauge, MetricsRegistry, MetricsSnapshot
from repro.testing.explorer import RunSummary
from repro.vm.kernel import RunStatus

from .frames import TelemetryFrame

__all__ = ["LiveAggregator", "ShardRow", "STATUS_FORMAT"]

#: ``format`` marker of the ``/status`` JSON document.
STATUS_FORMAT = "repro-live-status"

#: Dropped-frame ceiling per SSE subscriber: a consumer more than this
#: many frames behind loses the oldest rather than blocking the campaign.
_SUBSCRIBER_DEPTH = 256


@dataclass
class ShardRow:
    """Live view of one shard's disposition."""

    shard: str
    state: str = "pending"  # pending|running|done|failed|resumed
    runs: int = 0
    timeouts: int = 0
    attempts: int = 1
    exhausted: bool = False
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "shard": self.shard,
            "state": self.state,
            "runs": self.runs,
            "attempts": self.attempts,
        }
        if self.timeouts:
            row["timeouts"] = self.timeouts
        if self.exhausted:
            row["exhausted"] = True
        if self.error:
            row["error"] = self.error
        return row


class LiveAggregator:
    """Thread-safe incremental merge of a campaign's telemetry stream."""

    def __init__(
        self,
        info: Optional[Mapping[str, Any]] = None,
        total_runs: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.started_at = clock()
        #: campaign identity (fingerprint, factory, mode, budget, ...)
        self.info: Dict[str, Any] = dict(info or {})
        self.total_runs = total_runs
        self.state = "running"
        self.goal: Optional[str] = None

        self.runs = 0  # unique schedules merged
        self.executed = 0  # every execution, duplicates included
        self.duplicates = 0
        self.failures = 0  # unique non-ok schedules
        self.statuses: "Counter[str]" = Counter()
        self.class_counts: "Counter[str]" = Counter()
        self.signatures: Set[Tuple[str, Tuple[str, ...]]] = set()
        #: merged per-run metrics registry (unique schedules only) —
        #: byte-identical to ``CampaignResult.metrics`` by construction
        self.metrics = MetricsRegistry()
        self.metrics_seen = False

        self.shards: Dict[str, ShardRow] = {}
        self.shards_total = 0
        self.shards_done = 0
        self.shards_failed = 0
        self.shards_requeued = 0
        self.shards_resumed = 0

        self._frame_seq = 0
        self._subscribers: List["queue.Queue[Dict[str, Any]]"] = []

    # -- intake (orchestrator thread) --------------------------------------

    def set_shards_total(self, count: int) -> None:
        with self._lock:
            self.shards_total = count

    def note_run(
        self,
        summary: RunSummary,
        duplicate: bool,
        shard_id: str = "",
        frame: Optional[TelemetryFrame] = None,
    ) -> None:
        """Fold one merged run.  ``duplicate`` is the orchestrator's
        schedule-dedup verdict; duplicates count as executions only."""
        with self._lock:
            self.executed += 1
            if duplicate:
                self.duplicates += 1
            else:
                self.runs += 1
                self.statuses[summary.status] += 1
                if not summary.ok:
                    self.failures += 1
                    self.signatures.add(summary.signature)
                for code in summary.detected_classes:
                    self.class_counts[code] += 1
                if summary.metrics:
                    self.metrics_seen = True
                    self.metrics.merge_snapshot(
                        MetricsSnapshot.from_dict(summary.metrics)
                    )
            row = self._row(shard_id or (frame.shard if frame else ""))
            if row is not None:
                row.state = "running"
                if frame is not None:
                    row.runs = max(row.runs, frame.runs)
                    row.timeouts = max(row.timeouts, frame.timeouts)
                    row.attempts = max(row.attempts, frame.attempt)
                else:
                    row.runs += 1
                    if summary.status == RunStatus.TIMEOUT.value:
                        row.timeouts += 1
            published: Dict[str, Any] = {
                "kind": "run",
                "shard": shard_id or (frame.shard if frame else ""),
                "status": summary.status,
                "duplicate": duplicate,
                "classes": list(summary.detected_classes),
                "runs": self.runs,
                "executed": self.executed,
                "duplicates": self.duplicates,
                "failures": self.failures,
            }
            self._publish(published)

    def note_shard_done(
        self, shard_id: str, exhausted: bool = False, runs: Optional[int] = None
    ) -> None:
        with self._lock:
            self.shards_done += 1
            row = self._row(shard_id)
            if row is not None:
                row.state = "done"
                row.exhausted = exhausted
                if runs is not None:
                    row.runs = max(row.runs, runs)
            self._publish(
                {
                    "kind": "shard-done",
                    "shard": shard_id,
                    "exhausted": exhausted,
                    "shards_done": self.shards_done,
                    "shards_total": self.shards_total,
                }
            )

    def note_shard_failed(self, shard_id: str, error: str = "") -> None:
        with self._lock:
            self.shards_failed += 1
            row = self._row(shard_id)
            if row is not None:
                row.state = "failed"
                row.error = error
            self._publish(
                {"kind": "shard-failed", "shard": shard_id, "error": error}
            )

    def note_shard_requeued(self, shard_id: str) -> None:
        with self._lock:
            self.shards_requeued += 1
            row = self._row(shard_id)
            if row is not None:
                row.attempts += 1
                row.state = "pending"
                row.runs = 0
                row.timeouts = 0
            self._publish({"kind": "shard-requeued", "shard": shard_id})

    def note_shards_resumed(self, shard_ids: List[str]) -> None:
        with self._lock:
            self.shards_resumed += len(shard_ids)
            self.shards_done += len(shard_ids)
            for shard_id in shard_ids:
                row = self._row(shard_id)
                if row is not None:
                    row.state = "resumed"

    def close(self, goal: Optional[str] = None, state: str = "done") -> None:
        """Mark the campaign finished and wake every SSE subscriber."""
        with self._lock:
            self.state = state
            self.goal = goal
            self._publish({"kind": "end", "state": state, "goal": goal})

    # -- reads (HTTP handler threads) --------------------------------------

    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-9)

    def runs_per_sec(self) -> float:
        return self.executed / self.elapsed()

    def eta_seconds(self) -> Optional[float]:
        if not self.total_runs or self.executed <= 0:
            return None
        remaining = self.total_runs - self.executed
        if remaining <= 0:
            return 0.0
        return remaining / self.runs_per_sec()

    def status(self) -> Dict[str, Any]:
        """The ``/status`` JSON document (see docs/formats.md)."""
        with self._lock:
            eta = self.eta_seconds()
            doc: Dict[str, Any] = {
                "format": STATUS_FORMAT,
                "version": 1,
                "state": self.state,
                "goal": self.goal,
                "runs": self.runs,
                "executed": self.executed,
                "duplicates": self.duplicates,
                "failures": self.failures,
                "signatures": len(self.signatures),
                "total_runs": self.total_runs,
                "statuses": dict(sorted(self.statuses.items())),
                "class_counts": dict(sorted(self.class_counts.items())),
                "elapsed_seconds": round(self.elapsed(), 3),
                "runs_per_sec": round(self.runs_per_sec(), 3),
                "eta_seconds": None if eta is None else round(eta, 3),
                "shards": {
                    "total": self.shards_total,
                    "done": self.shards_done,
                    "failed": self.shards_failed,
                    "requeued": self.shards_requeued,
                    "resumed": self.shards_resumed,
                },
                "shard_table": [
                    row.to_dict()
                    for _, row in sorted(self.shards.items())
                ],
            }
            doc.update(self.info)
            top = self._top_contended()
            if top is not None:
                doc["top_contended"] = {"monitor": top[0], "ticks": top[1]}
            return doc

    def status_json(self) -> str:
        return json.dumps(self.status(), sort_keys=True)

    def registry(self) -> MetricsRegistry:
        """A fresh campaign-level registry mirroring
        :meth:`repro.engine.campaign.CampaignResult.build_metrics`, built
        from the live counters — what ``/metrics`` serves mid-run."""
        with self._lock:
            registry = MetricsRegistry()
            if self.metrics_seen:
                registry.merge(self.metrics)
            runs = registry.counter(
                "campaign_runs_total", "unique schedules merged, by run status"
            )
            for status_value, count in self.statuses.items():
                runs.inc(count, status=status_value)
            registry.counter(
                "campaign_duplicate_schedules_total",
                "runs discarded as duplicate schedules",
            ).inc(self.duplicates)
            classes = registry.counter(
                "campaign_failure_classes_total",
                "unique schedules implicating each Table-1 failure class",
            )
            for code, count in self.class_counts.items():
                classes.inc(count, failure_class=code)
            shards = registry.counter(
                "campaign_shards_total", "shard dispositions across the campaign"
            )
            shards.inc(self.shards_done, state="completed")
            shards.inc(self.shards_failed, state="failed")
            shards.inc(self.shards_requeued, state="requeued")
            shards.inc(self.shards_resumed, state="resumed")
            registry.gauge(
                "campaign_runs_per_second",
                "overall campaign throughput (executed runs / wall time)",
                agg="last",
            ).set(self.runs_per_sec())
            attach_campaign_info(registry, self.info, self.shards_total)
            return registry

    # -- SSE plumbing ------------------------------------------------------

    def subscribe(self) -> "queue.Queue[Dict[str, Any]]":
        subscriber: "queue.Queue[Dict[str, Any]]" = queue.Queue(
            maxsize=_SUBSCRIBER_DEPTH
        )
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue[Dict[str, Any]]") -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    # -- internals ---------------------------------------------------------

    def _row(self, shard_id: str) -> Optional[ShardRow]:
        if not shard_id:
            return None
        row = self.shards.get(shard_id)
        if row is None:
            row = ShardRow(shard=shard_id)
            self.shards[shard_id] = row
        return row

    def _publish(self, frame: Dict[str, Any]) -> None:
        self._frame_seq += 1
        frame["seq"] = self._frame_seq
        for subscriber in self._subscribers:
            try:
                subscriber.put_nowait(frame)
            except queue.Full:
                try:  # drop the oldest frame, never the stream
                    subscriber.get_nowait()
                    subscriber.put_nowait(frame)
                except (queue.Empty, queue.Full):
                    pass

    def _top_contended(self) -> Optional[Tuple[str, float]]:
        contended = self.metrics.get("vm_monitor_contended_ticks_total")
        if isinstance(contended, MetricsCounter):
            top = contended.top(1, label="monitor")
            if top:
                return top[0]
        return None


def attach_campaign_info(
    registry: MetricsRegistry,
    info: Mapping[str, Any],
    shards_total: int,
) -> Optional[Gauge]:
    """Add the ``campaign_info`` labeled gauge (value always 1) carrying
    campaign identity: fingerprint, factory, mode, shard count, and the
    repro version — the Prometheus ``*_info`` convention."""
    labels: Dict[str, str] = {}
    for key in ("fingerprint", "factory", "mode"):
        value = info.get(key)
        if value is not None:
            labels[key] = str(value)
    if not labels and not shards_total:
        return None
    from repro import __version__

    labels["version"] = __version__
    labels["shards"] = str(shards_total)
    gauge = registry.gauge(
        "campaign_info",
        "campaign identity labels; the value is always 1",
        agg="last",
    )
    gauge.set(1, **labels)
    return gauge
