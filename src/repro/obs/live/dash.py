"""Terminal dashboard over the live ``/status`` document.

Two entry points share one pure renderer:

* ``repro campaign --dash`` — a daemon thread redraws the local
  aggregator's status while the orchestrator runs (see
  :class:`LocalDashboard`);
* ``repro dash --url http://HOST:PORT`` — polls a remote campaign's
  ``/status`` endpoint and redraws until the campaign reports ``done``
  (see :func:`run_dashboard`).

:func:`render_dashboard` is deliberately a pure ``dict -> str`` function
so tests (and future front ends) can exercise it without a terminal.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import IO, Any, Callable, Dict, List, Mapping, Optional

from .aggregate import LiveAggregator

__all__ = [
    "render_dashboard",
    "fetch_status",
    "run_dashboard",
    "LocalDashboard",
]

#: ANSI "clear screen, home cursor" prefix used between redraws.
CLEAR = "\x1b[2J\x1b[H"

#: Shard rows shown before the table is elided.
_MAX_SHARD_ROWS = 12


def _bar(fraction: float, width: int = 30) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + f"] {fraction:4.0%}"


def _duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_dashboard(status: Mapping[str, Any]) -> str:
    """Render one ``/status`` document as a multi-line dashboard."""
    lines: List[str] = []
    factory = status.get("factory", "?")
    mode = status.get("mode", "?")
    fingerprint = str(status.get("fingerprint", ""))[:12]
    state = status.get("state", "?")
    title = f"campaign {factory!r} · mode={mode} · {state}"
    if fingerprint:
        title += f" · {fingerprint}"
    lines.append(title)
    lines.append("=" * len(title))

    executed = int(status.get("executed", 0))
    total = status.get("total_runs")
    runs_bit = f"runs {status.get('runs', 0)} unique / {executed} executed"
    duplicates = int(status.get("duplicates", 0))
    if duplicates:
        runs_bit += f" ({duplicates} dup)"
    if total:
        runs_bit += f" of {total}"
        lines.append(_bar(executed / int(total)))
    lines.append(runs_bit)

    rate_bit = f"{float(status.get('runs_per_sec', 0.0)):.1f} runs/s"
    rate_bit += f" · elapsed {_duration(float(status.get('elapsed_seconds', 0)))}"
    eta = status.get("eta_seconds")
    if eta is not None and float(eta) > 0:
        rate_bit += f" · eta {_duration(float(eta))}"
    lines.append(rate_bit)

    failures = int(status.get("failures", 0))
    fail_bit = (
        f"failures {failures} · signatures {status.get('signatures', 0)}"
    )
    statuses = status.get("statuses") or {}
    if statuses:
        fail_bit += " · " + ",".join(
            f"{name}:{count}" for name, count in sorted(dict(statuses).items())
        )
    lines.append(fail_bit)

    class_counts = status.get("class_counts") or {}
    if class_counts:
        lines.append(
            "classes "
            + ",".join(
                f"{code}:{count}"
                for code, count in sorted(dict(class_counts).items())
            )
        )
    top = status.get("top_contended")
    if isinstance(top, Mapping):
        lines.append(
            f"hot monitor {top.get('monitor')}: {int(top.get('ticks', 0))} ticks"
        )

    shards = status.get("shards") or {}
    if shards:
        shard_bit = (
            f"shards {shards.get('done', 0)}/{shards.get('total', 0)} done"
        )
        extras = [
            f"{shards.get(key, 0)} {key}"
            for key in ("requeued", "failed", "resumed")
            if shards.get(key)
        ]
        if extras:
            shard_bit += f" ({', '.join(extras)})"
        lines.append(shard_bit)

    table = status.get("shard_table") or []
    if table:
        lines.append("")
        lines.append(f"  {'shard':<22} {'state':<9} {'runs':>5} {'attempts':>8}")
        for row in list(table)[:_MAX_SHARD_ROWS]:
            lines.append(
                f"  {str(row.get('shard', '?')):<22} "
                f"{str(row.get('state', '?')):<9} "
                f"{int(row.get('runs', 0)):>5} "
                f"{int(row.get('attempts', 1)):>8}"
            )
        hidden = len(table) - _MAX_SHARD_ROWS
        if hidden > 0:
            lines.append(f"  ... {hidden} more shard(s)")
    goal = status.get("goal")
    if goal:
        lines.append(f"goal reached: {goal}")
    return "\n".join(lines)


def fetch_status(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``<url>/status`` and decode the JSON document."""
    target = url.rstrip("/")
    if not target.endswith("/status"):
        target += "/status"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return dict(json.loads(response.read().decode("utf-8")))


def run_dashboard(
    url: str,
    stream: IO[str],
    interval: float = 1.0,
    clear: bool = True,
    max_polls: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll a remote campaign's ``/status`` and redraw until it finishes.

    Returns 0 when the campaign reported a terminal state, 1 when the
    endpoint became unreachable (campaign gone) or ``max_polls`` ran out.
    """
    polls = 0
    while max_polls is None or polls < max_polls:
        polls += 1
        try:
            status = fetch_status(url, timeout=max(interval, 1.0))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            stream.write(f"dash: {url} unreachable: {exc}\n")
            return 1
        if clear:
            stream.write(CLEAR)
        stream.write(render_dashboard(status) + "\n")
        stream.flush()
        if status.get("state") != "running":
            return 0
        sleep(interval)
    return 1


class LocalDashboard:
    """Background redraw loop over an in-process aggregator
    (``repro campaign --dash``)."""

    def __init__(
        self,
        aggregator: LiveAggregator,
        stream: IO[str],
        interval: float = 0.5,
        clear: bool = True,
    ) -> None:
        self.aggregator = aggregator
        self.stream = stream
        self.interval = interval
        self.clear = clear
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _draw(self) -> None:
        if self.clear:
            self.stream.write(CLEAR)
        self.stream.write(render_dashboard(self.aggregator.status()) + "\n")
        self.stream.flush()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._draw()

    def start(self) -> "LocalDashboard":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-dash", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop redrawing and paint one final frame."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._draw()
