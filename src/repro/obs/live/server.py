"""Embedded campaign status/metrics endpoint — stdlib only.

``repro campaign --serve HOST:PORT`` starts a
:class:`~http.server.ThreadingHTTPServer` on a daemon thread next to the
orchestrator.  Three routes, all read-only views of the campaign's
:class:`~repro.obs.live.aggregate.LiveAggregator`:

* ``GET /status``  — the live campaign state as JSON;
* ``GET /metrics`` — Prometheus text exposition (the same
  :func:`~repro.obs.export.to_prometheus` rendering the post-campaign
  ``--metrics-prom`` file uses), scrape-ready mid-run;
* ``GET /events``  — Server-Sent Events: one ``status`` snapshot, then
  every telemetry frame as a ``frame`` event, and a final ``end`` event
  when the campaign closes.

The server binds before the campaign starts (port 0 picks a free port),
serves each request on its own daemon thread, and is shut down by the
caller in a ``finally`` — an open SSE client never blocks campaign exit.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.export import to_prometheus

from .aggregate import LiveAggregator

__all__ = ["TelemetryServer", "parse_serve_address"]

#: Seconds between SSE keep-alive comments when no frame arrives.
_SSE_HEARTBEAT = 5.0


def parse_serve_address(value: str) -> Tuple[str, int]:
    """Parse ``--serve`` values: ``HOST:PORT``, ``:PORT``, or ``PORT``
    (bare port binds localhost; port 0 asks the OS for a free port)."""
    host, _, port_text = value.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--serve expects HOST:PORT, :PORT, or PORT, got {value!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--serve port out of range: {port}")
    return host, port


class _LiveHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    aggregator: LiveAggregator


class _Handler(BaseHTTPRequestHandler):
    server: _LiveHTTPServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # telemetry must not spam the campaign's own terminal

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        aggregator = self.server.aggregator
        try:
            if path in ("/", "/status"):
                self._send_body(
                    200, "application/json", aggregator.status_json() + "\n"
                )
            elif path == "/metrics":
                self._send_body(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    to_prometheus(aggregator.registry()),
                )
            elif path == "/events":
                self._stream_events(aggregator)
            else:
                self._send_body(
                    404,
                    "application/json",
                    json.dumps({"error": f"no route {path!r}"}) + "\n",
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    # -- helpers -----------------------------------------------------------

    def _send_body(self, code: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _stream_events(self, aggregator: LiveAggregator) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        subscriber = aggregator.subscribe()
        try:
            self._sse("status", aggregator.status())
            if aggregator.state != "running":
                self._sse("end", {"state": aggregator.state})
                return
            while True:
                try:
                    frame = subscriber.get(timeout=_SSE_HEARTBEAT)
                except queue.Empty:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if frame.get("kind") == "end":
                    self._sse("end", frame)
                    return
                self._sse("frame", frame)
        finally:
            aggregator.unsubscribe(subscriber)

    def _sse(self, event: str, data: Dict[str, Any]) -> None:
        payload = f"event: {event}\ndata: {json.dumps(data, sort_keys=True)}\n\n"
        self.wfile.write(payload.encode("utf-8"))
        self.wfile.flush()


class TelemetryServer:
    """A live telemetry endpoint bound to one aggregator.

    Usage::

        server = TelemetryServer(aggregator, "127.0.0.1", 0)
        server.start()
        try:
            ...  # run the campaign
        finally:
            aggregator.close()
            server.close()
    """

    def __init__(
        self, aggregator: LiveAggregator, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.aggregator = aggregator
        self._httpd = _LiveHTTPServer((host, port), _Handler)
        self._httpd.aggregator = aggregator
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None
