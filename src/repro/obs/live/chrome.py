"""Chrome trace-event export: open a VM run in Perfetto.

Converts a kernel :class:`~repro.vm.trace.Trace` (plus optional
:class:`~repro.obs.spans.Span` lists from a ``keep_spans`` tracer) into
the Chrome trace-event JSON format that ``ui.perfetto.dev`` and
``chrome://tracing`` load directly:

* **pid 1 — threads**: one track per VM thread carrying its state
  timeline as complete ("X") slices — ``runnable``, ``blocked`` (entry
  set / lock reacquire after a wake), ``waiting`` (wait set), and
  ``clock-wait`` — derived by replaying the monitor-protocol events;
* **pid 2 — monitors**: one track per monitor, a ``held by <thread>``
  slice per lock tenure, so contention is visible as gaps and handoffs;
  rw-locks render the same way with the mode in the slice name
  (``held by <thread> (read)``), overlapping reader tenures and all;
* **counter tracks** ("C" events on pid 2) for the other first-class
  primitives: available permits per semaphore (sampled at every
  ``SEM_ACQUIRE``/``SEM_RELEASE``) and completed generations per barrier
  (stepped at every ``BARRIER_TRIP``);
* **pid 3 — spans**: one track per span name for tracer spans;
* **flow arrows** from every ``notify``/``notifyAll`` (and
  thread-initiated interrupt) to the woken thread's ``MONITOR_NOTIFIED``,
  carrying the :class:`~repro.vm.events.WakeReason` in ``args.reason``;
* **instant events** for lost notifies, spurious wakeups, timeouts,
  interrupts, and thread crashes.

Timestamps are VM virtual time mapped 1 tick -> 1 µs, so slice widths are
schedule-deterministic: the same schedule renders the same picture on
every machine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs.spans import Span
from repro.vm.events import Event, EventKind
from repro.vm.trace import Trace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Process ids of the three track groups.
PID_THREADS = 1
PID_MONITORS = 2
PID_SPANS = 3

_STATE_RUNNABLE = "runnable"
_STATE_BLOCKED = "blocked"
_STATE_WAITING = "waiting"
_STATE_CLOCK = "clock-wait"


def _meta(
    pid: int, tid: int, name: str, what: str = "thread_name"
) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": what,
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _slice(
    pid: int,
    tid: int,
    name: str,
    cat: str,
    start: int,
    end: int,
    args: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    if end <= start:
        return None  # zero-width slices only clutter the viewer
    event: Dict[str, Any] = {
        "ph": "X",
        "name": name,
        "cat": cat,
        "pid": pid,
        "tid": tid,
        "ts": start,
        "dur": end - start,
    }
    if args:
        event["args"] = args
    return event


def _instant(
    pid: int,
    tid: int,
    name: str,
    cat: str,
    ts: int,
    args: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "ph": "i",
        "name": name,
        "cat": cat,
        "pid": pid,
        "tid": tid,
        "ts": ts,
        "s": "t",
    }
    if args:
        event["args"] = args
    return event


class _Converter:
    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.out: List[Dict[str, Any]] = []
        self.thread_tid: Dict[str, int] = {
            name: index + 1 for index, name in enumerate(trace.threads())
        }
        self.monitor_tid: Dict[str, int] = {
            name: index + 1 for index, name in enumerate(trace.monitors())
        }
        events = trace.events
        self.end_time: int = (max(e.time for e in events) + 1) if events else 1
        #: thread -> (state name, state entered at)
        self.state: Dict[str, Tuple[str, int]] = {}
        #: (thread, monitor) -> hold started at
        self.holds: Dict[Tuple[str, str], int] = {}
        #: (thread, rw-lock, mode) -> hold started at; readers overlap
        self.rw_holds: Dict[Tuple[str, str, str], int] = {}
        #: woken thread -> (flow id, wake cause) for pending flow arrows
        self.pending_wakes: Dict[str, Tuple[int, str]] = {}
        self.flow_seq = 0

    # -- track bookkeeping -------------------------------------------------

    def _tid(self, thread: str) -> int:
        if thread not in self.thread_tid:
            self.thread_tid[thread] = len(self.thread_tid) + 1
        return self.thread_tid[thread]

    def _close_state(self, thread: str, at: int) -> None:
        entry = self.state.pop(thread, None)
        if entry is None:
            return
        name, since = entry
        piece = _slice(PID_THREADS, self._tid(thread), name, "state", since, at)
        if piece is not None:
            self.out.append(piece)

    def _enter_state(self, thread: str, name: str, at: int) -> None:
        self._close_state(thread, at)
        self.state[thread] = (name, at)

    def _close_hold(self, thread: str, monitor: str, at: int) -> None:
        since = self.holds.pop((thread, monitor), None)
        if since is None:
            return
        piece = _slice(
            PID_MONITORS,
            self.monitor_tid.get(monitor, 0),
            f"held by {thread}",
            "monitor",
            since,
            at,
            args={"thread": thread, "monitor": monitor},
        )
        if piece is not None:
            self.out.append(piece)

    def _close_rw_hold(
        self, thread: str, lock: str, mode: str, at: int
    ) -> None:
        since = self.rw_holds.pop((thread, lock, mode), None)
        if since is None:
            return
        piece = _slice(
            PID_MONITORS,
            self.monitor_tid.get(lock, 0),
            f"held by {thread} ({mode})",
            "rwlock",
            since,
            at,
            args={"thread": thread, "lock": lock, "mode": mode},
        )
        if piece is not None:
            self.out.append(piece)

    def _counter(self, name: str, ts: int, args: Dict[str, Any]) -> None:
        self.out.append(
            {
                "ph": "C",
                "name": name,
                "cat": "primitive",
                "pid": PID_MONITORS,
                "tid": 0,
                "ts": ts,
                "args": args,
            }
        )

    # -- flow arrows -------------------------------------------------------

    def _flow_start(self, thread: str, ts: int, cause: str) -> int:
        self.flow_seq += 1
        self.out.append(
            {
                "ph": "s",
                "name": "wake",
                "cat": "wake",
                "id": self.flow_seq,
                "pid": PID_THREADS,
                "tid": self._tid(thread),
                "ts": ts,
                "args": {"cause": cause},
            }
        )
        return self.flow_seq

    def _flow_finish(self, thread: str, ts: int, reason: str) -> None:
        pending = self.pending_wakes.pop(thread, None)
        if pending is None:
            self.out.append(
                _instant(
                    PID_THREADS,
                    self._tid(thread),
                    f"woken ({reason})",
                    "wake",
                    ts,
                    args={"reason": reason},
                )
            )
            return
        flow_id, _cause = pending
        self.out.append(
            {
                "ph": "f",
                "bp": "e",
                "name": "wake",
                "cat": "wake",
                "id": flow_id,
                "pid": PID_THREADS,
                "tid": self._tid(thread),
                "ts": ts,
                "args": {"reason": reason},
            }
        )

    # -- event replay ------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        thread, t = event.thread, event.time
        kind = event.kind
        detail = event.detail
        if kind is EventKind.THREAD_START:
            self._enter_state(thread, _STATE_RUNNABLE, t)
        elif kind in (EventKind.THREAD_END, EventKind.THREAD_CRASH):
            self._close_state(thread, t)
            if kind is EventKind.THREAD_CRASH:
                self.out.append(
                    _instant(
                        PID_THREADS,
                        self._tid(thread),
                        "crash",
                        "thread",
                        t,
                        args={"error": str(detail.get("error", ""))},
                    )
                )
        elif kind is EventKind.MONITOR_REQUEST:
            self._enter_state(thread, _STATE_BLOCKED, t)
        elif kind is EventKind.MONITOR_ACQUIRE:
            self._enter_state(thread, _STATE_RUNNABLE, t)
            if event.monitor is not None and not detail.get("reentrant"):
                self.holds[(thread, event.monitor)] = t
        elif kind is EventKind.MONITOR_WAIT:
            self._enter_state(thread, _STATE_WAITING, t)
            if event.monitor is not None:
                self._close_hold(thread, event.monitor, t)
        elif kind is EventKind.MONITOR_RELEASE:
            if event.monitor is not None and not detail.get("reentrant"):
                self._close_hold(thread, event.monitor, t)
        elif kind is EventKind.MONITOR_NOTIFIED:
            # The woken thread re-contends for the lock: waiting -> blocked.
            self._enter_state(thread, _STATE_BLOCKED, t)
            self._flow_finish(thread, t, str(detail.get("reason", "notify")))
        elif kind in (EventKind.NOTIFY, EventKind.NOTIFY_ALL):
            woken = [str(w) for w in detail.get("woken", ())]
            cause = (
                "notify_all" if kind is EventKind.NOTIFY_ALL else "notify"
            )
            for waiter in woken:
                self.pending_wakes[waiter] = (
                    self._flow_start(thread, t, cause),
                    cause,
                )
            if not woken:
                name = (
                    "notify dropped"
                    if detail.get("injected_loss")
                    else "notify lost"
                )
                self.out.append(
                    _instant(
                        PID_THREADS,
                        self._tid(thread),
                        name,
                        "wake",
                        t,
                        args={"monitor": event.monitor},
                    )
                )
        elif kind is EventKind.INTERRUPT:
            by = str(detail.get("by", ""))
            self.out.append(
                _instant(
                    PID_THREADS,
                    self._tid(thread),
                    "interrupt",
                    "fault",
                    t,
                    args={"by": by, "state": str(detail.get("thread_state", ""))},
                )
            )
            if by in self.thread_tid:
                self.pending_wakes[thread] = (
                    self._flow_start(by, t, "interrupt"),
                    "interrupt",
                )
        elif kind is EventKind.WAIT_TIMEOUT:
            self.out.append(
                _instant(
                    PID_THREADS,
                    self._tid(thread),
                    "wait timeout",
                    "fault",
                    t,
                    args={"monitor": event.monitor},
                )
            )
        elif kind is EventKind.SPURIOUS_WAKEUP:
            self.out.append(
                _instant(
                    PID_THREADS,
                    self._tid(thread),
                    "spurious wakeup",
                    "fault",
                    t,
                    args={"monitor": event.monitor},
                )
            )
        elif kind is EventKind.CLOCK_AWAIT:
            self._enter_state(thread, _STATE_CLOCK, t)
        elif kind is EventKind.CLOCK_RESUME:
            self._enter_state(thread, _STATE_RUNNABLE, t)
        elif kind is EventKind.SEM_REQUEST:
            self._enter_state(thread, _STATE_BLOCKED, t)
        elif kind is EventKind.SEM_ACQUIRE:
            self._enter_state(thread, _STATE_RUNNABLE, t)
            if event.monitor is not None and "available" in detail:
                self._counter(
                    f"{event.monitor} permits",
                    t,
                    {"permits": detail["available"]},
                )
        elif kind is EventKind.SEM_RELEASE:
            if event.monitor is not None and "available" in detail:
                self._counter(
                    f"{event.monitor} permits",
                    t,
                    {"permits": detail["available"]},
                )
        elif kind is EventKind.RW_REQUEST:
            self._enter_state(thread, _STATE_BLOCKED, t)
        elif kind is EventKind.RW_ACQUIRE:
            self._enter_state(thread, _STATE_RUNNABLE, t)
            if event.monitor is not None and not detail.get("reentrant"):
                mode = str(detail.get("mode", "read"))
                self.rw_holds[(thread, event.monitor, mode)] = t
        elif kind is EventKind.RW_DOWNGRADE:
            # the write holder takes a read hold; its write tenure continues
            if event.monitor is not None:
                self.rw_holds.setdefault((thread, event.monitor, "read"), t)
        elif kind is EventKind.RW_RELEASE:
            if event.monitor is not None and not detail.get("reentrant"):
                self._close_rw_hold(
                    thread, event.monitor, str(detail.get("mode", "read")), t
                )
        elif kind is EventKind.BARRIER_AWAIT:
            if not detail.get("broken"):
                self._enter_state(thread, _STATE_WAITING, t)
        elif kind is EventKind.BARRIER_RESUME:
            self._enter_state(thread, _STATE_RUNNABLE, t)
        elif kind is EventKind.BARRIER_TRIP:
            if event.monitor is not None:
                self._counter(
                    f"{event.monitor} generation",
                    t,
                    {"generation": int(detail.get("generation", 0)) + 1},
                )
        elif kind is EventKind.BARRIER_BROKEN:
            self.out.append(
                _instant(
                    PID_THREADS,
                    self._tid(thread),
                    "barrier broken",
                    "fault",
                    t,
                    args={
                        "barrier": event.monitor,
                        "waiters": [str(w) for w in detail.get("waiters", ())],
                    },
                )
            )

    def convert(self) -> List[Dict[str, Any]]:
        self.out.append(_meta(PID_THREADS, 0, "vm threads", "process_name"))
        self.out.append(_meta(PID_MONITORS, 0, "monitors", "process_name"))
        for name, tid in self.thread_tid.items():
            self.out.append(_meta(PID_THREADS, tid, name))
        for name, tid in self.monitor_tid.items():
            self.out.append(_meta(PID_MONITORS, tid, name))
        for event in self.trace.events:
            self._on_event(event)
        # Close whatever is still open (deadlocked/stuck threads render as
        # blocked/waiting slices reaching the end of the run).
        for thread in list(self.state):
            self._close_state(thread, self.end_time)
        for thread, monitor in list(self.holds):
            self._close_hold(thread, monitor, self.end_time)
        for thread, lock, mode in list(self.rw_holds):
            self._close_rw_hold(thread, lock, mode, self.end_time)
        return self.out


def _span_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    track_of: Dict[str, int] = {}
    for span in spans:
        if not span.finished:
            continue
        tid = track_of.setdefault(span.name, len(track_of) + 1)
        args: Dict[str, Any] = {
            "wall_seconds": span.wall_seconds,
            **{k: str(v) for k, v in span.labels.items()},
        }
        piece = _slice(
            PID_SPANS,
            tid,
            span.name,
            "span",
            span.vm_start,
            span.vm_end if span.vm_end is not None else span.vm_start,
            args=args,
        )
        if piece is not None:
            out.append(piece)
    events: List[Dict[str, Any]] = []
    if track_of:
        events.append(_meta(PID_SPANS, 0, "spans", "process_name"))
        for name, tid in track_of.items():
            events.append(_meta(PID_SPANS, tid, name))
    return events + out


def to_chrome_trace(
    trace: Trace,
    spans: Iterable[Span] = (),
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON document for one run."""
    events = _Converter(trace).convert()
    events.extend(_span_events(spans))
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-chrome-trace",
            "version": 1,
            "time_unit": "1 VM tick = 1us",
            **(dict(meta) if meta else {}),
        },
    }
    return document


def write_chrome_trace(
    trace: Trace,
    path: Union[str, Path],
    spans: Iterable[Span] = (),
    meta: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write the Perfetto-loadable JSON for ``trace`` to ``path``."""
    target = Path(path)
    document = to_chrome_trace(trace, spans=spans, meta=meta)
    target.write_text(json.dumps(document, indent=None) + "\n")
    return target
