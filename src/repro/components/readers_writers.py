"""A readers-writers monitor (writer-preference variant).

Multiple readers may hold the resource simultaneously; a writer needs
exclusive access.  Writers are given preference: arriving writers block
new readers, the classic recipe whose *reader-starvation-free* property
the starvation analyzer can probe.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["ReadersWriters"]


class ReadersWriters(MonitorComponent):
    """Monitor guarding a shared resource for readers and writers."""

    def __init__(self) -> None:
        super().__init__()
        self.active_readers = 0
        self.active_writers = 0
        self.waiting_writers = 0

    @synchronized
    def start_read(self):
        """Block until no writer is active or waiting, then register."""
        while self.active_writers > 0 or self.waiting_writers > 0:
            yield Wait()
        self.active_readers = self.active_readers + 1

    @synchronized
    def end_read(self):
        """Deregister a reader; wake blocked writers when the last leaves."""
        self.active_readers = self.active_readers - 1
        if self.active_readers == 0:
            yield NotifyAll()

    @synchronized
    def start_write(self):
        """Block until the resource is completely free, then claim it."""
        self.waiting_writers = self.waiting_writers + 1
        while self.active_readers > 0 or self.active_writers > 0:
            yield Wait()
        self.waiting_writers = self.waiting_writers - 1
        self.active_writers = 1

    @synchronized
    def end_write(self):
        """Release exclusive access and wake everyone."""
        self.active_writers = 0
        yield NotifyAll()
