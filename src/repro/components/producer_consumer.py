"""The paper's Figure-2 producer-consumer monitor, ported line-for-line.

The asymmetric Producer-Consumer monitor (the Java equivalent of Brinch
Hansen's Concurrent-Pascal program): ``send`` places a *string* of
characters into the buffer; ``receive`` retrieves it one *character* at a
time.  A consumer waits while the buffer is empty; a producer waits while
it is nonempty.

Monitor state (names follow the paper):

* ``contents`` — the stored string;
* ``cur_pos`` — characters of ``contents`` not yet received;
* ``total_length`` — length of ``contents``.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["ProducerConsumer"]


class ProducerConsumer(MonitorComponent):
    """Asymmetric producer-consumer monitor (paper Figure 2)."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        """Retrieve a single character; waits while no character is available."""
        # wait if no character is available
        while self.cur_pos == 0:
            yield Wait()
        # retrieve character
        y = self.contents[self.total_length - self.cur_pos]
        self.cur_pos = self.cur_pos - 1
        # notify blocked send/receive calls
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        """Store a string of characters; waits while characters remain."""
        # wait if there are more characters
        while self.cur_pos > 0:
            yield Wait()
        # store string
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        # notify blocked send/receive calls
        yield NotifyAll()
