"""A shut-down-able task queue (the core of a thread pool).

Workers loop on ``take``; ``shutdown`` wakes everyone and ``take`` then
returns ``None`` once drained — the poison-pill-free shutdown protocol.
Exercises a guard with *two* exit conditions (item available OR shutting
down), whose CoFG differs from the single-guard monitors: the wait loop
has two distinct false-exits.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["TaskQueue"]


class TaskQueue(MonitorComponent):
    """FIFO task queue with cooperative shutdown."""

    def __init__(self) -> None:
        super().__init__()
        self.tasks: List[Any] = []
        self.closed = False

    @synchronized
    def put(self, task: Any):
        """Enqueue a task; rejected after shutdown."""
        if self.closed:
            raise RuntimeError("queue is shut down")
        self.tasks = self.tasks + [task]
        yield NotifyAll()

    @synchronized
    def take(self):
        """Dequeue the next task, waiting while empty; returns ``None``
        when the queue is shut down and drained."""
        while len(self.tasks) == 0 and not self.closed:
            yield Wait()
        if len(self.tasks) == 0:
            return None
        task = self.tasks[0]
        self.tasks = self.tasks[1:]
        yield NotifyAll()
        return task

    @synchronized
    def shutdown(self):
        """Close the queue and release all waiting workers."""
        self.closed = True
        yield NotifyAll()

    @synchronized
    def pending(self):
        """Tasks enqueued but not yet taken."""
        return len(self.tasks)
