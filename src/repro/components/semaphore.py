"""A counting semaphore built as a monitor component."""

from __future__ import annotations

from repro.vm import MonitorComponent, Notify, NotifyAll, Wait, synchronized

__all__ = ["Semaphore"]


class Semaphore(MonitorComponent):
    """Counting semaphore: ``acquire`` blocks while no permits remain.

    ``release`` uses single ``notify`` deliberately: every waiter waits on
    the same condition (permits available) and one release satisfies
    exactly one waiter, so a single wake is sufficient *and* efficient —
    the textbook situation where ``notify`` is correct.
    """

    def __init__(self, permits: int = 1) -> None:
        super().__init__()
        if permits < 0:
            raise ValueError("permits must be >= 0")
        self.permits = permits

    @synchronized
    def acquire(self):
        """Take one permit; waits until one is available."""
        while self.permits == 0:
            yield Wait()
        self.permits = self.permits - 1

    @synchronized
    def release(self):
        """Return one permit and wake one waiter."""
        self.permits = self.permits + 1
        yield Notify()

    @synchronized
    def try_acquire(self):
        """Non-blocking acquire; returns True on success."""
        if self.permits > 0:
            self.permits = self.permits - 1
            return True
        return False

    @synchronized
    def available(self):
        """Current permit count."""
        return self.permits
