"""Components backed by the VM's first-class primitives.

Each class here wraps one kernel primitive (counting semaphore, rw-lock,
cyclic barrier) behind the same method surface as its monitor-built
sibling (:class:`~repro.components.semaphore.Semaphore`,
:class:`~repro.components.readers_writers.ReadersWriters`,
:class:`~repro.components.barrier.CyclicBarrier`).  That makes them
*differential references*: the same workload template drives either
implementation, and their observable outcomes must agree — the
monitor-built component re-derives with wait/notify what the kernel
primitive implements natively.

The backing primitive is created at registration time (``_vm_attach``)
under the derived name ``<component>.<kind>``, since the component's own
name is taken by the monitor ``Kernel.register`` creates for it.
"""

from __future__ import annotations

from typing import Any

from repro.vm import (
    BarrierAwait,
    Kernel,
    MonitorComponent,
    RwAcquire,
    RwRelease,
    SemAcquire,
    SemRelease,
    unsynchronized,
)

__all__ = ["NativeSemaphore", "NativeReadWriteLock", "NativeBarrier"]


class NativeSemaphore(MonitorComponent):
    """Counting semaphore backed by the kernel's ``SemAcquire`` /
    ``SemRelease`` syscalls (java.util.concurrent.Semaphore), method-
    compatible with the monitor-built :class:`Semaphore`."""

    def __init__(self, permits: int = 1) -> None:
        super().__init__()
        if permits < 0:
            raise ValueError("permits must be >= 0")
        object.__setattr__(self, "_permits", permits)
        object.__setattr__(self, "_vm_sem", None)

    def _vm_attach(self, kernel: Kernel, name: str) -> None:
        super()._vm_attach(kernel, name)
        sem = kernel.new_semaphore(f"{name}.sem", self._permits)
        object.__setattr__(self, "_vm_sem", sem)

    @unsynchronized
    def acquire(self):
        """Take one permit; blocks until one is available."""
        yield SemAcquire(self._vm_sem)

    @unsynchronized
    def release(self):
        """Return one permit (no ownership check, as in j.u.c)."""
        yield SemRelease(self._vm_sem)

    @unsynchronized
    def try_acquire(self):
        """Non-blocking acquire; returns True on success (a timed acquire
        with a zero deadline, ``tryAcquire`` on virtual time)."""
        got = yield SemAcquire(self._vm_sem, timeout=0)
        return bool(got)

    @unsynchronized
    def available(self):
        """Current permit count."""
        return self._vm_sem.permits
        yield  # pragma: no cover - marks the method as a generator


class NativeReadWriteLock(MonitorComponent):
    """Read-write lock backed by ``RwAcquire`` / ``RwRelease``
    (java.util.concurrent.locks.ReentrantReadWriteLock), exposing the
    ``start_read``/``end_read``/``start_write``/``end_write`` surface of
    the monitor-built :class:`ReadersWriters` so the ``rw`` workload
    template drives either."""

    def __init__(self, preference: str = "writer") -> None:
        super().__init__()
        object.__setattr__(self, "_preference", preference)
        object.__setattr__(self, "_vm_lock", None)

    def _vm_attach(self, kernel: Kernel, name: str) -> None:
        super()._vm_attach(kernel, name)
        lock = kernel.new_rwlock(f"{name}.rw", self._preference)
        object.__setattr__(self, "_vm_lock", lock)

    @unsynchronized
    def start_read(self):
        """Acquire the read lock (shared)."""
        yield RwAcquire(self._vm_lock, "read")

    @unsynchronized
    def end_read(self):
        """Release one read hold."""
        yield RwRelease(self._vm_lock)

    @unsynchronized
    def start_write(self):
        """Acquire the write lock (exclusive)."""
        yield RwAcquire(self._vm_lock, "write")

    @unsynchronized
    def end_write(self):
        """Release one write hold."""
        yield RwRelease(self._vm_lock)

    @unsynchronized
    def downgrade(self):
        """Acquire read while holding write (the atomic j.u.c downgrade);
        pair with an extra ``end_read`` after ``end_write``."""
        yield RwAcquire(self._vm_lock, "read")


class NativeBarrier(MonitorComponent):
    """Cyclic barrier backed by ``BarrierAwait``
    (java.util.concurrent.CyclicBarrier), method-compatible with the
    monitor-built :class:`CyclicBarrier`."""

    def __init__(self, parties: int) -> None:
        super().__init__()
        if parties < 1:
            raise ValueError("parties must be >= 1")
        object.__setattr__(self, "_parties", parties)
        object.__setattr__(self, "_vm_barrier", None)

    def _vm_attach(self, kernel: Kernel, name: str) -> None:
        super()._vm_attach(kernel, name)
        barrier = kernel.new_barrier(f"{name}.barrier", self._parties)
        object.__setattr__(self, "_vm_barrier", barrier)

    @unsynchronized
    def arrive(self):
        """Block until ``parties`` threads have arrived; returns the
        0-based arrival index within the cycle."""
        index = yield BarrierAwait(self._vm_barrier)
        return index

    @unsynchronized
    def waiting(self):
        """Number of threads currently parked at the barrier."""
        return len(self._vm_barrier.waiters)
        yield  # pragma: no cover - marks the method as a generator
