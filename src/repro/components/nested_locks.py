"""Nested-lock components (paper Section 3.1).

The paper's two-lock example: *"A thread can lock more than one object ...
Both locks are held whilst in the inner-most synchronized block."*  These
components exercise multi-monitor acquisition, which feeds the lock-order
graph detector: :class:`OrderedPair` always locks in a global order (safe);
the faulty counterpart in ``repro.components.faulty.deadlock_pair`` locks
in caller order (deadlock-prone).
"""

from __future__ import annotations

from typing import Any

from repro.vm import Acquire, MonitorComponent, Release, synchronized, unsynchronized

__all__ = ["Account", "OrderedPair"]


class Account(MonitorComponent):
    """A bank account; balance mutations must hold the account's monitor."""

    def __init__(self, balance: int = 0) -> None:
        super().__init__()
        self.balance = balance

    @synchronized
    def deposit(self, amount: int):
        self.balance = self.balance + amount

    @synchronized
    def withdraw(self, amount: int):
        self.balance = self.balance - amount

    @synchronized
    def get_balance(self):
        return self.balance


class OrderedPair(MonitorComponent):
    """Transfers between two accounts, always locking in a fixed global
    order (by registered name) — the standard deadlock-free discipline."""

    def __init__(self) -> None:
        super().__init__()

    @unsynchronized
    def transfer(self, source: Any, target: Any, amount: int):
        """Move ``amount`` from ``source`` to ``target`` atomically with
        respect to both accounts, acquiring their monitors in name order."""
        ordered = sorted((source, target), key=lambda a: a.vm_name)
        yield Acquire(ordered[0])
        yield Acquire(ordered[1])
        source.balance = source.balance - amount
        target.balance = target.balance + amount
        yield Release(ordered[1])
        yield Release(ordered[0])
