"""Example monitor components, correct and faulty.

Correct components::

    from repro.components import (
        ProducerConsumer,    # the paper's Figure 2
        BoundedBuffer, ReadersWriters, Semaphore,
        CyclicBarrier, CountDownLatch, Account, OrderedPair,
    )

Faulty components (one seeded defect per Table-1 failure class) live in
:mod:`repro.components.faulty`, with metadata in ``FAULT_REGISTRY``.
"""

from .barrier import CyclicBarrier
from .bounded_buffer import BoundedBuffer
from .fair_lock import FairLock
from .future_value import Exchanger, FutureValue
from .latch import CountDownLatch
from .native import NativeBarrier, NativeReadWriteLock, NativeSemaphore
from .nested_locks import Account, OrderedPair
from .producer_consumer import ProducerConsumer
from .readers_writers import ReadersWriters
from .semaphore import Semaphore
from .task_queue import TaskQueue

__all__ = [
    "Account",
    "BoundedBuffer",
    "CountDownLatch",
    "CyclicBarrier",
    "Exchanger",
    "FairLock",
    "FutureValue",
    "NativeBarrier",
    "NativeReadWriteLock",
    "NativeSemaphore",
    "OrderedPair",
    "ProducerConsumer",
    "ReadersWriters",
    "Semaphore",
    "TaskQueue",
]

# Register every correct component under its class name so RunConfig can
# address it as a plain string (repro.components.faulty registers the
# seeded-fault classes the same way).
from repro.run.registry import COMPONENTS as _RUN_COMPONENTS  # noqa: E402

for _cls in (
    Account,
    BoundedBuffer,
    CountDownLatch,
    CyclicBarrier,
    Exchanger,
    FairLock,
    FutureValue,
    NativeBarrier,
    NativeReadWriteLock,
    NativeSemaphore,
    OrderedPair,
    ProducerConsumer,
    ReadersWriters,
    Semaphore,
    TaskQueue,
):
    _RUN_COMPONENTS.add(_cls.__name__, _cls)
del _cls
