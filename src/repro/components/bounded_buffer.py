"""A classic bounded FIFO buffer monitor.

Unlike the paper's asymmetric producer-consumer (which holds one string at
a time), this is the standard N-slot buffer: ``put`` blocks while the
buffer is full, ``get`` blocks while it is empty.  It exercises the same
CoFG shape with a different guard structure and is the second workload of
the exploration study.
"""

from __future__ import annotations

from typing import Any, List

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["BoundedBuffer"]


class BoundedBuffer(MonitorComponent):
    """FIFO buffer with at most ``capacity`` items."""

    def __init__(self, capacity: int = 4) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.items: List[Any] = []

    @synchronized
    def put(self, item: Any):
        """Append ``item``; waits while the buffer is full."""
        while len(self.items) >= self.capacity:
            yield Wait()
        self.items = self.items + [item]
        yield NotifyAll()

    @synchronized
    def get(self):
        """Remove and return the oldest item; waits while empty."""
        while len(self.items) == 0:
            yield Wait()
        item = self.items[0]
        self.items = self.items[1:]
        yield NotifyAll()
        return item

    @synchronized
    def size(self):
        """Current number of buffered items."""
        return len(self.items)
