"""A cyclic barrier monitor component."""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["CyclicBarrier"]


class CyclicBarrier(MonitorComponent):
    """``parties`` threads meet at the barrier; the last arrival releases
    everyone and resets the barrier for the next cycle.

    A generation counter distinguishes cycles so a thread woken by a
    *later* cycle's arrivals cannot leak through early — the guard is
    ``generation`` change, not arrival count, the standard recipe against
    premature re-entry (EF-T5)."""

    def __init__(self, parties: int) -> None:
        super().__init__()
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.parties = parties
        self.arrived = 0
        self.generation = 0

    @synchronized
    def arrive(self):
        """Block until ``parties`` threads have arrived; returns the
        0-based arrival index within the cycle."""
        my_generation = self.generation
        index = self.arrived
        self.arrived = self.arrived + 1
        if self.arrived == self.parties:
            self.arrived = 0
            self.generation = self.generation + 1
            yield NotifyAll()
            return index
        while self.generation == my_generation:
            yield Wait()
        return index

    @synchronized
    def waiting(self):
        """Number of threads currently blocked at the barrier."""
        return self.arrived
