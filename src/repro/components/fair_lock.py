"""A FIFO-fair lock built over an unfair monitor.

Section 5.2.1 points out that the JVM need not be fair and a thread may
starve (FF-T2 way 2).  The classic remedy is a *ticket lock*: each
acquirer takes a ticket and waits until the serving counter reaches it.
Fairness then holds even under a LIFO/adversarial monitor policy — which
the ablation bench demonstrates by running the same contention workload
over a plain monitor (starvation) and this component (none).
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["FairLock"]


class FairLock(MonitorComponent):
    """Ticket lock: strict FIFO granting regardless of monitor policy."""

    def __init__(self) -> None:
        super().__init__()
        self.next_ticket = 0
        self.now_serving = 0
        self.holder_ticket = -1

    @synchronized
    def lock(self):
        """Take a ticket and wait for it to be served; returns the ticket."""
        ticket = self.next_ticket
        self.next_ticket = self.next_ticket + 1
        while self.now_serving != ticket:
            yield Wait()
        self.holder_ticket = ticket
        return ticket

    @synchronized
    def unlock(self):
        """Serve the next ticket (caller must hold the lock)."""
        if self.holder_ticket != self.now_serving:
            raise RuntimeError("unlock() by a thread that does not hold the lock")
        self.holder_ticket = -1
        self.now_serving = self.now_serving + 1
        yield NotifyAll()

    @synchronized
    def queue_length(self):
        """Number of tickets issued but not yet served."""
        return self.next_ticket - self.now_serving
