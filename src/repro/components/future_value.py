"""A single-assignment future and a rendezvous exchanger."""

from __future__ import annotations

from typing import Any

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["FutureValue", "Exchanger"]


class FutureValue(MonitorComponent):
    """A write-once cell: ``get`` blocks until ``set_value`` is called.

    Setting twice raises — the future is single-assignment, and the error
    surfaces inside the monitor, exercising the VM's exception-unwinding
    release path."""

    def __init__(self) -> None:
        super().__init__()
        self.resolved = False
        self.value = None

    @synchronized
    def set_value(self, value: Any):
        if self.resolved:
            raise ValueError("future already resolved")
        self.value = value
        self.resolved = True
        yield NotifyAll()

    @synchronized
    def get(self):
        while not self.resolved:
            yield Wait()
        return self.value

    @synchronized
    def is_resolved(self):
        return self.resolved


class Exchanger(MonitorComponent):
    """A two-party rendezvous: each ``exchange(x)`` blocks until a partner
    arrives, then each receives the other's item (java.util.concurrent's
    Exchanger in monitor form).

    The slot protocol: the first arrival deposits its item and waits; the
    second takes it, deposits its own, wakes the first, and the pair
    completes.  A generation flag prevents a third thread from pairing
    with a completed exchange (the premature-re-entry hazard)."""

    def __init__(self) -> None:
        super().__init__()
        self.slot_full = False
        self.offered = None
        self.reply = None
        self.reply_ready = False

    @synchronized
    def exchange(self, item: Any):
        while self.reply_ready:
            # a previous pair is still completing: wait for a clean slot
            yield Wait()
        if not self.slot_full:
            # first of the pair
            self.offered = item
            self.slot_full = True
            while not self.reply_ready:
                yield Wait()
            received = self.reply
            self.reply_ready = False
            self.reply = None
            yield NotifyAll()
            return received
        # second of the pair
        received = self.offered
        self.offered = None
        self.slot_full = False
        self.reply = item
        self.reply_ready = True
        yield NotifyAll()
        return received
