"""EV-SPU: a spurious wake-up is trusted without re-checking the guard.

``receive`` assumes the only way out of ``wait()`` is a genuine notify:
the guard is checked once, before the wait, never after.  Under normal
scheduling with a single consumer the component *looks* correct — the bug
only surfaces when the environment wakes the waiter spuriously (which the
JVM specification explicitly permits), at which point the consumer reads
an empty buffer.

This is the environment-deviation twin of the if-instead-of-while bug:
``IfGuardProducerConsumer`` can be exposed by a competing waiter alone,
whereas this component needs a spurious wake (injected by a fault plan or
``spurious_wakeup_rate``) to misbehave.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["SpuriousUnguardedProducerConsumer"]


class SpuriousUnguardedProducerConsumer(MonitorComponent):
    """Producer-consumer whose consumer trusts every wake-up."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        if self.cur_pos == 0:
            yield Wait()  # seeded EV-SPU: wake reason never questioned
        if self.cur_pos == 0:
            # spuriously woken; proceeds on an empty buffer
            y = "?"
        else:
            y = self.contents[self.total_length - self.cur_pos]
            self.cur_pos = self.cur_pos - 1
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield NotifyAll()
