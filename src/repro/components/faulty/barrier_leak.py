"""FF-B1: a barrier configured for a party that never arrives.

The off-by-one ``parties`` count registers the barrier for one arrival
more than the protocol ever produces, so the trip precondition is never
met and every real party parks forever in the current generation
(symptom *barrier-starve*).
"""

from __future__ import annotations

from repro.components.native import NativeBarrier
from repro.vm import Kernel

__all__ = ["LeakyBarrier"]


class LeakyBarrier(NativeBarrier):
    """Native barrier created for ``parties + 1`` arrivals."""

    def _vm_attach(self, kernel: Kernel, name: str) -> None:
        # BUG: registers one more party than the workload spawns.  Skip
        # NativeBarrier's attach (it would create the correctly-sized
        # barrier under the same name).
        from repro.vm import MonitorComponent

        MonitorComponent._vm_attach(self, kernel, name)
        barrier = kernel.new_barrier(f"{name}.barrier", self._parties + 1)
        object.__setattr__(self, "_vm_barrier", barrier)
