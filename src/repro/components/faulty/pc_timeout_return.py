"""EV-TMO: a timed wait's expiry is treated as success.

``receive`` waits with a timeout but never distinguishes "notified because
an item arrived" from "the timer expired": when the wait returns it reads
the buffer unconditionally, and on expiry (guard still false) it fabricates
a result instead of retrying or reporting the timeout.  A consumer racing a
slow producer returns the placeholder as if it were real data.

Detected dynamically: a wake with ``reason="timeout"`` on a monitor that
saw no notify during the waiting interval, followed by a CALL_END without
re-entering the wait.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["TimeoutReturnProducerConsumer"]


class TimeoutReturnProducerConsumer(MonitorComponent):
    """Producer-consumer whose consumer mistakes a timeout for data."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        if self.cur_pos == 0:
            yield Wait(timeout=3)  # seeded EV-TMO: expiry not re-checked
        if self.cur_pos == 0:
            # the timer expired; fabricate a value as if one arrived
            y = "?"
        else:
            y = self.contents[self.total_length - self.cur_pos]
            self.cur_pos = self.cur_pos - 1
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield NotifyAll()
