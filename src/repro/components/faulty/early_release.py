"""EF-T4: the object lock is released prematurely.

``put`` releases the monitor in the middle of its critical section and
reacquires it before returning, leaving the read-modify-write of ``count``
unprotected in between (Table 1 EF-T4: *"Thread exits and subsequent
statements may access shared resources."*).  The lockset detector sees
``count`` written with an empty lockset; deterministic tests see lost
updates.
"""

from __future__ import annotations

from repro.vm import Acquire, MonitorComponent, Release, Yield, synchronized

__all__ = ["EarlyReleaseBuffer"]


class EarlyReleaseBuffer(MonitorComponent):
    """A counter-like buffer whose put drops the lock mid-update."""

    def __init__(self) -> None:
        super().__init__()
        self.count = 0

    @synchronized
    def put(self):
        """Seeded EF-T4: lock released before the update is complete."""
        current = self.count
        yield Release(self)   # premature release (leaving the block too early)
        yield Yield()         # another thread may now interleave
        self.count = current + 1  # subsequent statement accesses shared state
        yield Acquire(self)   # reacquire so the method wrapper stays balanced
        return self.count

    @synchronized
    def get_count(self):
        return self.count
