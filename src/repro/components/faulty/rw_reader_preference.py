"""FF-T2 (liveness): writer starvation in a reader-preference lock.

The correct :class:`~repro.components.readers_writers.ReadersWriters`
gives writers preference (`waiting_writers` blocks new readers).  This
variant omits that check: as long as readers keep overlapping, a waiting
writer's guard (`active_readers > 0`) never becomes false at its wake-ups
— "one or more threads repeatedly acquire the lock being requested by
this thread" (Table 1, FF-T2, way 2), at the resource level rather than
the monitor level.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["ReaderPreferenceRW"]


class ReaderPreferenceRW(MonitorComponent):
    """Readers-writers without writer preference (writers can starve)."""

    def __init__(self) -> None:
        super().__init__()
        self.active_readers = 0
        self.active_writers = 0

    @synchronized
    def start_read(self):
        """Seeded defect: ignores waiting writers entirely."""
        while self.active_writers > 0:
            yield Wait()
        self.active_readers = self.active_readers + 1

    @synchronized
    def end_read(self):
        self.active_readers = self.active_readers - 1
        if self.active_readers == 0:
            yield NotifyAll()

    @synchronized
    def start_write(self):
        while self.active_readers > 0 or self.active_writers > 0:
            yield Wait()
        self.active_writers = 1

    @synchronized
    def end_write(self):
        self.active_writers = 0
        yield NotifyAll()
