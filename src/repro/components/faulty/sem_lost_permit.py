"""FF-S3: a semaphore whose release drops the permit.

The classic j.u.c leak — ``release()`` skipped on some path — shrinks the
pool permanently: once every original permit has passed through the leaky
release, the next ``acquire`` blocks forever on a pool nothing refills
(symptom *lost-permit*).
"""

from __future__ import annotations

from repro.components.native import NativeSemaphore
from repro.vm import unsynchronized

__all__ = ["LostPermitSemaphore"]


class LostPermitSemaphore(NativeSemaphore):
    """Native semaphore with a release that forgets the ``SemRelease``."""

    @unsynchronized
    def release(self):
        """BUG: returns without releasing — the permit is lost."""
        return None
        yield  # pragma: no cover - marks the method as a generator
