"""FF-T1: shared state accessed without synchronization (data race).

``increment`` performs the classic read-modify-write with an explicit
scheduling point between the read and the write.  Two incrementing
threads can interleave at that point and lose an update — the
"interference" consequence of Table 1's FF-T1 row.  The lockset detector
flags the race on ``value`` regardless of whether the loss manifests.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, Yield, synchronized, unsynchronized

__all__ = ["UnsyncCounter"]


class UnsyncCounter(MonitorComponent):
    """A counter whose increment forgot the synchronized block."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0

    @unsynchronized
    def increment(self):
        """Read-modify-write with no lock (the seeded FF-T1 defect)."""
        current = self.value
        yield Yield()  # scheduling point inside the unprotected section
        self.value = current + 1
        return self.value

    @synchronized
    def get(self):
        """Correctly synchronized read."""
        return self.value
