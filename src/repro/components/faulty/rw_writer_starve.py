"""FF-R2: a reader-preference rw-lock that starves writers.

With ``preference="reader"`` the kernel admits any reader whenever no
writer is *active* — queued writers do not hold new readers back.  Under
continuous reader turnover the writer's acquire is never granted
(symptom *writer-starvation*), the rw-lock twin of the monitor-built
:class:`~repro.components.faulty.rw_reader_preference.ReaderPreferenceRW`
exemplar.
"""

from __future__ import annotations

from repro.components.native import NativeReadWriteLock

__all__ = ["WriterStarvingRwLock"]


class WriterStarvingRwLock(NativeReadWriteLock):
    """Native rw-lock pinned to the starvation-prone reader preference."""

    def __init__(self) -> None:
        # BUG: reader preference lets fresh readers barge past a queued
        # writer; the correct default ("writer") shuts reader admission
        # off the moment a writer asks.
        super().__init__(preference="reader")
