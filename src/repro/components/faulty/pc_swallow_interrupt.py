"""EV-INT: the interrupt is swallowed instead of propagated.

``receive`` wraps its wait in ``try/except InterruptedError: pass`` — the
Java anti-pattern of catching ``InterruptedException`` with an empty
handler.  An interrupted consumer silently re-checks the guard and keeps
going, so cancellation requests are lost: the caller that interrupted the
thread believes it has stopped, but it continues to consume items.

Detected statically (an ``except InterruptedError`` handler that neither
re-raises nor re-asserts the flag) and dynamically (an interrupt was
delivered during a call whose CALL_END does not carry ``interrupted``).
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["InterruptSwallowingProducerConsumer"]


class InterruptSwallowingProducerConsumer(MonitorComponent):
    """Producer-consumer whose consumer swallows ``InterruptedError``."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        while self.cur_pos == 0:
            try:
                yield Wait()
            except InterruptedError:
                # seeded EV-INT: cancellation is silently discarded; the
                # loop re-checks the guard as if nothing happened
                pass
        y = self.contents[self.total_length - self.cur_pos]
        self.cur_pos = self.cur_pos - 1
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield NotifyAll()
