"""FF-T5: the waiting thread is never notified.

``send`` stores its string but never calls ``notifyAll``: a consumer that
arrived first and went to sleep stays in the wait set forever (Table 1
FF-T5: *"No other thread calls notify whilst this thread is in the wait
state ... Thread is permanently suspended."*).
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["NoNotifyProducerConsumer"]


class NoNotifyProducerConsumer(MonitorComponent):
    """Producer-consumer whose send forgot to notify."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        while self.cur_pos == 0:
            yield Wait()
        y = self.contents[self.total_length - self.cur_pos]
        self.cur_pos = self.cur_pos - 1
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        """Seeded FF-T5: the notifyAll at the end was dropped."""
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        # (missing) yield NotifyAll()
