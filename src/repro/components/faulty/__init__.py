"""Faulty components: one seeded defect per Table-1 failure class.

Every module here contains a deliberately broken monitor together with
metadata (:data:`FAULT_REGISTRY`) recording which failure class the defect
seeds and which detection technique Table 1 predicts will catch it.  The
mutation-detection study (bench Ext-A) runs each faulty component under
its nominal workload and checks that the predicted detector fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type

from repro.classify.taxonomy import DetectionTechnique, FailureClass
from repro.vm.api import MonitorComponent

from .barrier_leak import LeakyBarrier
from .deadlock_pair import DeadlockPair
from .early_release import EarlyReleaseBuffer
from .hold_forever import HoldForever
from .over_synchronized import OverSynchronized
from .pc_if_instead_of_while import IfGuardProducerConsumer
from .pc_no_notify import NoNotifyProducerConsumer
from .pc_no_wait import NoWaitProducerConsumer
from .pc_notify_single import SingleNotifyProducerConsumer
from .pc_spurious_wait import SpuriousWaitProducerConsumer
from .pc_swallow_interrupt import InterruptSwallowingProducerConsumer
from .pc_timeout_return import TimeoutReturnProducerConsumer
from .pc_unguarded_spurious import SpuriousUnguardedProducerConsumer
from .rw_reader_preference import ReaderPreferenceRW
from .rw_writer_starve import WriterStarvingRwLock
from .sem_lost_permit import LostPermitSemaphore
from .unsync_counter import UnsyncCounter


@dataclass(frozen=True)
class FaultInfo:
    """Metadata of one seeded defect."""

    component: Type[MonitorComponent]
    seeded_class: FailureClass
    predicted_techniques: Tuple[DetectionTechnique, ...]
    description: str


#: component class name -> fault metadata, one entry per failure class
#: (EF-T2 is unrepresentable by construction: the paper assumes a correct
#: JVM, and our kernel *is* the JVM — it cannot erroneously grant a lock).
FAULT_REGISTRY: Dict[str, FaultInfo] = {
    "UnsyncCounter": FaultInfo(
        UnsyncCounter,
        FailureClass.FF_T1,
        (DetectionTechnique.STATIC_ANALYSIS,),
        "increment reads/writes shared state with no synchronized block",
    ),
    "OverSynchronized": FaultInfo(
        OverSynchronized,
        FailureClass.EF_T1,
        (DetectionTechnique.STATIC_ANALYSIS,),
        "synchronizes a method that touches no shared state",
    ),
    "DeadlockPair": FaultInfo(
        DeadlockPair,
        FailureClass.FF_T2,
        (DetectionTechnique.STATIC_AND_DYNAMIC,),
        "acquires two monitors in caller order; opposite calls deadlock",
    ),
    "ReaderPreferenceRW": FaultInfo(
        ReaderPreferenceRW,
        FailureClass.FF_T2,
        (DetectionTechnique.STATIC_AND_DYNAMIC,),
        "reader-preference lock: overlapping readers starve the writer",
    ),
    "NoWaitProducerConsumer": FaultInfo(
        NoWaitProducerConsumer,
        FailureClass.FF_T3,
        (DetectionTechnique.COMPLETION_TIME,),
        "receive omits the guarded wait and runs on an empty buffer",
    ),
    "SpuriousWaitProducerConsumer": FaultInfo(
        SpuriousWaitProducerConsumer,
        FailureClass.EF_T3,
        (DetectionTechnique.COMPLETION_TIME,),
        "receive waits once more after consuming, with no notifier left",
    ),
    "HoldForever": FaultInfo(
        HoldForever,
        FailureClass.FF_T4,
        (DetectionTechnique.COMPLETION_TIME,),
        "compute() loops forever inside the critical section",
    ),
    "EarlyReleaseBuffer": FaultInfo(
        EarlyReleaseBuffer,
        FailureClass.EF_T4,
        (
            DetectionTechnique.STATIC_ANALYSIS,
            DetectionTechnique.COMPLETION_TIME,
        ),
        "releases the monitor mid-method and mutates state unprotected",
    ),
    "NoNotifyProducerConsumer": FaultInfo(
        NoNotifyProducerConsumer,
        FailureClass.FF_T5,
        (DetectionTechnique.COMPLETION_TIME,),
        "send never notifies, leaving waiting consumers suspended",
    ),
    "SingleNotifyProducerConsumer": FaultInfo(
        SingleNotifyProducerConsumer,
        FailureClass.FF_T5,
        (DetectionTechnique.COMPLETION_TIME,),
        "send/receive use notify() although waiters of both kinds exist",
    ),
    "IfGuardProducerConsumer": FaultInfo(
        IfGuardProducerConsumer,
        FailureClass.EF_T5,
        (DetectionTechnique.COMPLETION_TIME,),
        "guards wait with `if` instead of `while`; a premature wake-up "
        "re-enters the critical section with the guard violated",
    ),
    "InterruptSwallowingProducerConsumer": FaultInfo(
        InterruptSwallowingProducerConsumer,
        FailureClass.EV_INT,
        (
            DetectionTechnique.STATIC_ANALYSIS,
            DetectionTechnique.STATIC_AND_DYNAMIC,
        ),
        "receive catches InterruptedError with an empty handler, losing "
        "the cancellation request",
    ),
    "TimeoutReturnProducerConsumer": FaultInfo(
        TimeoutReturnProducerConsumer,
        FailureClass.EV_TMO,
        (DetectionTechnique.STATIC_AND_DYNAMIC,),
        "receive treats a timed wait's expiry as success and fabricates "
        "a result on the empty buffer",
    ),
    "SpuriousUnguardedProducerConsumer": FaultInfo(
        SpuriousUnguardedProducerConsumer,
        FailureClass.EV_SPU,
        (DetectionTechnique.STATIC_AND_DYNAMIC,),
        "receive trusts every wake-up; a spurious wake proceeds on an "
        "empty buffer",
    ),
    # First-class-primitive exemplars (semaphore / rw-lock / barrier).
    "LostPermitSemaphore": FaultInfo(
        LostPermitSemaphore,
        FailureClass.FF_S3,
        (DetectionTechnique.COMPLETION_TIME,),
        "release drops the permit instead of returning it to the pool",
    ),
    "WriterStarvingRwLock": FaultInfo(
        WriterStarvingRwLock,
        FailureClass.FF_R2,
        (DetectionTechnique.STATIC_AND_DYNAMIC,),
        "reader-preference rw-lock lets readers barge; a queued writer "
        "is never granted",
    ),
    "LeakyBarrier": FaultInfo(
        LeakyBarrier,
        FailureClass.FF_B1,
        (DetectionTechnique.COMPLETION_TIME,),
        "barrier is registered for one more party than ever arrives",
    ),
}

__all__ = [
    "DeadlockPair",
    "EarlyReleaseBuffer",
    "FAULT_REGISTRY",
    "FaultInfo",
    "HoldForever",
    "IfGuardProducerConsumer",
    "InterruptSwallowingProducerConsumer",
    "LeakyBarrier",
    "LostPermitSemaphore",
    "NoNotifyProducerConsumer",
    "NoWaitProducerConsumer",
    "OverSynchronized",
    "ReaderPreferenceRW",
    "SingleNotifyProducerConsumer",
    "WriterStarvingRwLock",
    "SpuriousUnguardedProducerConsumer",
    "SpuriousWaitProducerConsumer",
    "TimeoutReturnProducerConsumer",
    "UnsyncCounter",
]

# Register every seeded-fault class under its class name (the same key
# FAULT_REGISTRY uses) so RunConfig component= can name it.
from repro.run.registry import COMPONENTS as _RUN_COMPONENTS  # noqa: E402

for _name, _info in FAULT_REGISTRY.items():
    _RUN_COMPONENTS.add(_name, _info.component)
del _name, _info
