"""EF-T3: an erroneous call to wait.

After consuming its character, ``receive`` waits once more "for good
measure".  Table 1's EF-T3 row: *"A thread may suspend indefinitely if no
other thread exists to notify it.  The object lock is released."*  In the
single-producer/single-consumer test the extra wait is never notified and
the receive call never completes.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["SpuriousWaitProducerConsumer"]


class SpuriousWaitProducerConsumer(MonitorComponent):
    """Producer-consumer whose receive waits when it should not."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        while self.cur_pos == 0:
            yield Wait()
        y = self.contents[self.total_length - self.cur_pos]
        self.cur_pos = self.cur_pos - 1
        yield Wait()  # seeded EF-T3: an undesired wait before notifying
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield NotifyAll()
