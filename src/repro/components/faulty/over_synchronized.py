"""EF-T1: unnecessary synchronization.

``scale`` locks the monitor although it touches no shared state — the
thread "accesses [a] critical section" it never needed (Table 1, EF-T1).
Not a correctness failure, but detectable statically: the method reads and
writes only locals and arguments.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, synchronized

__all__ = ["OverSynchronized"]


class OverSynchronized(MonitorComponent):
    """A component with a pointlessly synchronized pure function."""

    def __init__(self) -> None:
        super().__init__()
        self.log_count = 0

    @synchronized
    def scale(self, values, factor):
        """Pure computation on its arguments — the lock buys nothing."""
        result = []
        for value in values:
            result.append(value * factor)
        return result

    @synchronized
    def record(self):
        """Correctly synchronized: mutates shared state."""
        self.log_count = self.log_count + 1
        return self.log_count
