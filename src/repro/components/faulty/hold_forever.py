"""FF-T4: a thread that never releases the object lock.

``compute`` spins in an endless loop inside the critical section (Table 1
FF-T4: *"Thread is either in endless loop, waiting for blocking input ...
Thread never completes.  Other threads may be blocked if they are waiting
for the lock."*).  Every later call on the component blocks forever; the
run ends at the kernel's step budget — the VM's rendering of "check
completion time of call" timing out.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, Yield, synchronized

__all__ = ["HoldForever"]


class HoldForever(MonitorComponent):
    """A component whose compute() never leaves its critical section."""

    def __init__(self) -> None:
        super().__init__()
        self.progress = 0

    @synchronized
    def compute(self):
        """Seeded FF-T4: the loop condition can never become false."""
        while True:
            self.progress = self.progress + 1
            yield Yield()

    @synchronized
    def read_progress(self):
        """Blocks forever once compute() is running."""
        return self.progress
