"""EF-T5: premature re-entry into the critical section.

The wait guard uses ``if`` instead of ``while``: a thread woken while its
guard still holds (because another waiter consumed the state first, or by
a spurious wakeup) proceeds anyway — Table 1's EF-T5 consequence *"Thread
prematurely re-enters the critical section"*.  With two consumers and one
item, the second consumer can read an empty buffer.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["IfGuardProducerConsumer"]


class IfGuardProducerConsumer(MonitorComponent):
    """Producer-consumer with the classic if-instead-of-while bug."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        if self.cur_pos == 0:  # seeded EF-T5: guard not re-checked on wake-up
            yield Wait()
        if self.cur_pos == 0:
            # woke with the guard still violated; reads stale/empty state
            y = "?"
        else:
            y = self.contents[self.total_length - self.cur_pos]
            self.cur_pos = self.cur_pos - 1
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        if self.cur_pos > 0:  # seeded EF-T5 (same bug, producer side)
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield NotifyAll()
