"""FF-T2 / FF-T4: deadlock through opposite-order nested locking.

``transfer`` acquires the two account monitors in *caller* order, so two
concurrent transfers in opposite directions can each hold one lock while
requesting the other — the circular wait of Section 3.1's nested-lock
discussion.  Contrast :class:`repro.components.nested_locks.OrderedPair`,
which sorts the monitors first.
"""

from __future__ import annotations

from typing import Any

from repro.vm import Acquire, MonitorComponent, Release, Yield, unsynchronized

__all__ = ["DeadlockPair"]


class DeadlockPair(MonitorComponent):
    """Transfers that lock accounts in argument order (deadlock-prone)."""

    def __init__(self) -> None:
        super().__init__()

    @unsynchronized
    def transfer(self, source: Any, target: Any, amount: int):
        """Move ``amount`` holding both account locks — acquired in the
        order given, which is the seeded defect."""
        yield Acquire(source)
        yield Yield()  # window for the opposite transfer to take its first lock
        yield Acquire(target)
        source.balance = source.balance - amount
        target.balance = target.balance + amount
        yield Release(target)
        yield Release(source)
