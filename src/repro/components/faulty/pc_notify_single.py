"""FF-T5 (unfair/insufficient notify): ``notify`` where ``notifyAll`` is
required.

Section 5.5.1: FF-T5 *"also occurs when a notify is called rather than a
notifyAll, there is more than one thread continuously in the wait state,
and one particular thread is never selected for notification."*  Here both
producers and consumers share one wait set; a single ``notify`` can wake a
thread of the *wrong kind* (e.g. a producer waking another producer),
which re-waits, losing the signal — some waiter is never served.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, Notify, Wait, synchronized

__all__ = ["SingleNotifyProducerConsumer"]


class SingleNotifyProducerConsumer(MonitorComponent):
    """Producer-consumer using notify() on a mixed wait set."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        while self.cur_pos == 0:
            yield Wait()
        y = self.contents[self.total_length - self.cur_pos]
        self.cur_pos = self.cur_pos - 1
        yield Notify()  # seeded FF-T5: may wake a waiter of the wrong kind
        return y

    @synchronized
    def send(self, x: str):
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield Notify()  # seeded FF-T5: may wake a waiter of the wrong kind
