"""FF-T3: missing call to wait.

``receive`` omits the guarded wait entirely: on an empty buffer it
"erroneously execute[s] in a critical section" (Table 1, FF-T3), reading
garbage and completing *earlier* than the deterministic test expects —
exactly the symptom the completion-time check catches.
"""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["NoWaitProducerConsumer"]


class NoWaitProducerConsumer(MonitorComponent):
    """Producer-consumer whose receive forgot to wait."""

    def __init__(self) -> None:
        super().__init__()
        self.contents = ""
        self.total_length = 0
        self.cur_pos = 0

    @synchronized
    def receive(self):
        """Seeded FF-T3: no ``while cur_pos == 0: wait()`` guard."""
        if self.cur_pos == 0:
            # proceeds anyway — the wait that should be here was dropped
            self.cur_pos = 1
            self.contents = "?"
            self.total_length = 1
        y = self.contents[self.total_length - self.cur_pos]
        self.cur_pos = self.cur_pos - 1
        yield NotifyAll()
        return y

    @synchronized
    def send(self, x: str):
        """Correct send (as in the paper's Figure 2)."""
        while self.cur_pos > 0:
            yield Wait()
        self.contents = x
        self.total_length = len(x)
        self.cur_pos = self.total_length
        yield NotifyAll()
