"""A one-shot countdown latch monitor component."""

from __future__ import annotations

from repro.vm import MonitorComponent, NotifyAll, Wait, synchronized

__all__ = ["CountDownLatch"]


class CountDownLatch(MonitorComponent):
    """Threads ``await_zero`` until ``count_down`` has been called
    ``count`` times.  One-shot: once open, it stays open."""

    def __init__(self, count: int) -> None:
        super().__init__()
        if count < 0:
            raise ValueError("count must be >= 0")
        self.count = count

    @synchronized
    def count_down(self):
        """Decrement the count; opens the latch (wakes all) at zero."""
        if self.count > 0:
            self.count = self.count - 1
            if self.count == 0:
                yield NotifyAll()

    @synchronized
    def await_zero(self):
        """Block until the count reaches zero."""
        while self.count > 0:
            yield Wait()

    @synchronized
    def get_count(self):
        """Remaining count."""
        return self.count
