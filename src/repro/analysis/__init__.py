"""Static analysis: Concurrency Flow Graph construction (paper Section 6).

Public API::

    from repro.analysis import build_cofg, build_all_cofgs, CoFG, NodeKind
"""

from .astscan import SYSCALL_NODE_KINDS, ScanResult, method_source_ast, scan_method
from .builder import (
    PAPER_FIGURE3_SEQUENCES,
    attribute_arc,
    build_all_cofgs,
    build_cofg,
    component_methods,
)
from .dot import cofg_to_dot
from .metrics import ComponentMetrics, MethodMetrics, component_metrics
from .static_checks import StaticFinding, check_component, shared_accesses
from .model import CoFG, CoFGArc, CoFGNode, NodeKind

__all__ = [
    "CoFG",
    "CoFGArc",
    "CoFGNode",
    "ComponentMetrics",
    "MethodMetrics",
    "NodeKind",
    "PAPER_FIGURE3_SEQUENCES",
    "SYSCALL_NODE_KINDS",
    "ScanResult",
    "StaticFinding",
    "attribute_arc",
    "build_all_cofgs",
    "build_cofg",
    "check_component",
    "cofg_to_dot",
    "component_metrics",
    "component_methods",
    "method_source_ast",
    "scan_method",
    "shared_accesses",
]
