"""Graphviz DOT export for Concurrency Flow Graphs (Figure 3 rendering)."""

from __future__ import annotations

from .model import CoFG, NodeKind

__all__ = ["cofg_to_dot"]

_SHAPES = {
    NodeKind.START: "circle",
    NodeKind.END: "doublecircle",
    NodeKind.WAIT: "box",
    NodeKind.NOTIFY: "box",
    NodeKind.NOTIFY_ALL: "box",
    NodeKind.YIELD: "diamond",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cofg_to_dot(cofg: CoFG, show_guards: bool = True) -> str:
    """Render a CoFG as a DOT digraph in the style of the paper's Figure 3:
    nodes are the concurrency statements, arcs labelled with the transition
    firings (and optionally their guards)."""
    title = f"{cofg.component}.{cofg.method}"
    lines = [
        f'digraph "{_escape(title)}" {{',
        "  rankdir=TB;",
        f'  label="CoFG: {_escape(title)}"; labelloc=t; fontsize=14;',
        "  node [fontsize=11];",
    ]
    for node in cofg.nodes:
        shape = _SHAPES.get(node.kind, "ellipse")
        lines.append(
            f'  "{_escape(node.name)}" [shape={shape}, '
            f'label="{_escape(node.kind.value)}"];'
        )
    for arc in cofg.arcs:
        label = ", ".join(arc.transitions)
        if show_guards and arc.guard:
            label = f"{label}\\n[{_escape(arc.guard)}]" if label else arc.guard
        lines.append(
            f'  "{_escape(arc.src.name)}" -> "{_escape(arc.dst.name)}" '
            f'[label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)
