"""CoFG construction (paper Section 6).

:func:`build_cofg` statically analyses one component method and produces
its Concurrency Flow Graph: the scanner (:mod:`repro.analysis.astscan`)
finds the concurrency statements and the guarded region relation, and this
module adds the synthetic START/END nodes and annotates every arc with the
Figure-1 transition firings its region exercises.

Transition attribution
----------------------

Each arc's firing sequence is composed of a contribution from its source
statement and one from its destination statement:

=============  ==================  =================
node           as source           as destination
=============  ==================  =================
START          T1, T2 (enter, acquire)   —
WAIT           T3, T5, T2 (suspend, notified, reacquire)   T3
NOTIFY(.ALL)   T5 (causes waiters' T5)   T5
END            —                   T4 (release)
=============  ==================  =================

Checked against the paper's Figure 3 for the producer-consumer monitor:

1. ``start→wait``       = T1,T2 + T3      → **T1, T2, T3** (paper: same)
2. ``wait→wait``        = T3,T5,T2 + T3   → **T3, T5, T2, T3** (paper: same)
3. ``wait→notifyAll``   = T3,T5,T2 + T5   → **T3, T5, T2, T5**
   (paper prints "T3, T4, T5"; by the model a thread resuming from wait
   fires T5 then T2 — it cannot fire T4 before reaching the end of the
   synchronized block — so we read the paper's list as a misprint and
   keep the model-consistent sequence; the Figure-3 emitter shows both.)
4. ``start→notifyAll``  = T1,T2 + T5      → **T1, T2, T5** (paper: same)
5. ``notifyAll→end``    = T5 + T4         → **T5, T4** (paper: same)

For ``@unsynchronized`` methods START/END contribute nothing (there is no
lock to acquire or release — the FF-T1 situation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.vm.api import MonitorComponent

from .astscan import ScanResult, scan_method
from .model import CoFG, CoFGArc, CoFGNode, NodeKind

__all__ = [
    "attribute_arc",
    "build_cofg",
    "build_all_cofgs",
    "component_methods",
    "PAPER_FIGURE3_SEQUENCES",
]

#: The transition lists exactly as printed in the paper's Section 6.1 /
#: Figure 3, keyed by (source kind, destination kind).  Used by the
#: Figure-3 emitter to show the paper's numbers next to ours.
PAPER_FIGURE3_SEQUENCES: Dict[Tuple[NodeKind, NodeKind], Tuple[str, ...]] = {
    (NodeKind.START, NodeKind.WAIT): ("T1", "T2", "T3"),
    (NodeKind.WAIT, NodeKind.WAIT): ("T3", "T5", "T2", "T3"),
    (NodeKind.WAIT, NodeKind.NOTIFY_ALL): ("T3", "T4", "T5"),
    (NodeKind.START, NodeKind.NOTIFY_ALL): ("T1", "T2", "T5"),
    (NodeKind.NOTIFY_ALL, NodeKind.END): ("T5", "T4"),
}

_SOURCE_FIRINGS: Dict[NodeKind, Tuple[str, ...]] = {
    NodeKind.START: ("T1", "T2"),
    NodeKind.WAIT: ("T3", "T5", "T2"),
    NodeKind.NOTIFY: ("T5",),
    NodeKind.NOTIFY_ALL: ("T5",),
    NodeKind.YIELD: (),
}

_DEST_FIRINGS: Dict[NodeKind, Tuple[str, ...]] = {
    NodeKind.WAIT: ("T3",),
    NodeKind.NOTIFY: ("T5",),
    NodeKind.NOTIFY_ALL: ("T5",),
    NodeKind.END: ("T4",),
    NodeKind.YIELD: (),
}


def attribute_arc(
    src: CoFGNode, dst: CoFGNode, synchronized: bool = True
) -> Tuple[str, ...]:
    """The Figure-1 transition firings exercised by the region
    ``src -> dst`` (model-consistent attribution; see module docstring)."""
    source = _SOURCE_FIRINGS.get(src.kind, ())
    dest = _DEST_FIRINGS.get(dst.kind, ())
    if not synchronized:
        if src.kind is NodeKind.START:
            source = ()
        if dst.kind is NodeKind.END:
            dest = ()
    return tuple(source) + tuple(dest)


def _node_map(scan: ScanResult) -> Dict[str, CoFGNode]:
    mapping = {node.name: node for node in scan.nodes}
    mapping["start"] = CoFGNode(NodeKind.START)
    mapping["end"] = CoFGNode(NodeKind.END)
    return mapping


def build_cofg(
    component: Type[MonitorComponent] | MonitorComponent,
    method_name: str,
) -> CoFG:
    """Build the CoFG of ``component.method_name`` by static analysis.

    ``component`` may be the class or an instance.  The method must have
    been declared with ``@synchronized`` or ``@unsynchronized``.
    """
    cls = component if isinstance(component, type) else type(component)
    method = getattr(cls, method_name, None)
    if method is None:
        raise AttributeError(f"{cls.__name__} has no method {method_name!r}")
    if not getattr(method, "_vm_call_wrapper", False):
        raise ValueError(
            f"{cls.__name__}.{method_name} is not declared @synchronized or "
            f"@unsynchronized; CoFGs are built for component methods only"
        )
    synchronized = bool(getattr(method, "_vm_synchronized", False))
    scan = scan_method(method)
    nodes_by_name = _node_map(scan)
    arcs: List[CoFGArc] = []
    for pred_name, succ_name in scan.edges:
        src = nodes_by_name[pred_name]
        dst = nodes_by_name[succ_name]
        region: Optional[Tuple[int, int]] = None
        src_line = src.line if src.line is not None else scan.first_line
        dst_line = dst.line if dst.line is not None else scan.last_line
        region = (min(src_line, dst_line), max(src_line, dst_line))
        arcs.append(
            CoFGArc(
                src=src,
                dst=dst,
                transitions=attribute_arc(src, dst, synchronized),
                guard=scan.guards.get((pred_name, succ_name), ""),
                region=region,
            )
        )
    all_nodes = [nodes_by_name["start"], *scan.nodes, nodes_by_name["end"]]
    return CoFG(
        component=cls.__name__,
        method=method_name,
        synchronized=synchronized,
        nodes=all_nodes,
        arcs=arcs,
    )


def component_methods(
    component: Type[MonitorComponent] | MonitorComponent,
) -> List[str]:
    """Names of all declared component methods (``@synchronized`` or
    ``@unsynchronized``), in definition order."""
    cls = component if isinstance(component, type) else type(component)
    names: List[str] = []
    for name in vars(cls):
        attr = getattr(cls, name)
        if callable(attr) and getattr(attr, "_vm_call_wrapper", False):
            names.append(name)
    return names


def build_all_cofgs(
    component: Type[MonitorComponent] | MonitorComponent,
) -> Dict[str, CoFG]:
    """CoFGs for every declared method of a component."""
    return {
        name: build_cofg(component, name) for name in component_methods(component)
    }
