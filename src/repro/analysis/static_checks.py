"""Static checks for the T1 failure classes.

Table 1 prescribes *static analysis / model checking* for both T1
deviations, and they are indeed statically visible in component source:

* **FF-T1** (missing synchronization): an ``@unsynchronized`` method that
  reads or writes shared instance state — under the component-testing
  assumption of multiple thread access (Section 1), any such access is a
  potential interference.
* **EF-T1** (unnecessary synchronization): a ``@synchronized`` method that
  touches no shared instance state and neither waits nor notifies — the
  lock buys nothing and only costs contention.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Tuple, Type

from repro.classify.taxonomy import FailureClass
from repro.vm.api import MonitorComponent

from .astscan import method_source_ast, scan_method
from .builder import component_methods

__all__ = ["StaticFinding", "check_component", "shared_accesses"]


@dataclass(frozen=True)
class StaticFinding:
    """One static-analysis finding on a component method."""

    component: str
    method: str
    failure_class: FailureClass
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.failure_class.code}] {self.component}.{self.method}: "
            f"{self.detail}"
        )


def shared_accesses(method) -> Tuple[List[str], List[str]]:
    """(reads, writes) of ``self.<field>`` instance attributes in a method,
    excluding underscore-prefixed internals."""
    func, _ = method_source_ast(method)
    self_name = func.args.args[0].arg if func.args.args else "self"
    reads: List[str] = []
    writes: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id != self_name or node.attr.startswith("_"):
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                writes.append(node.attr)
            else:
                reads.append(node.attr)
    return reads, writes


def check_component(
    component: Type[MonitorComponent] | MonitorComponent,
) -> List[StaticFinding]:
    """Run the FF-T1 / EF-T1 static checks on every declared method."""
    cls = component if isinstance(component, type) else type(component)
    findings: List[StaticFinding] = []
    for name in component_methods(cls):
        method = getattr(cls, name)
        synchronized = bool(getattr(method, "_vm_synchronized", False))
        reads, writes = shared_accesses(method)
        scan = scan_method(method)
        has_sync_statements = bool(scan.nodes)
        if not synchronized and (reads or writes):
            accessed = sorted(set(reads + writes))
            findings.append(
                StaticFinding(
                    component=cls.__name__,
                    method=name,
                    failure_class=FailureClass.FF_T1,
                    detail=(
                        f"unsynchronized access to shared field(s) "
                        f"{accessed}; interference possible under multiple "
                        f"thread access"
                    ),
                )
            )
        if synchronized and not (reads or writes) and not has_sync_statements:
            findings.append(
                StaticFinding(
                    component=cls.__name__,
                    method=name,
                    failure_class=FailureClass.EF_T1,
                    detail=(
                        "synchronized method touches no shared state and "
                        "neither waits nor notifies: unnecessary "
                        "synchronization"
                    ),
                )
            )
    return findings
