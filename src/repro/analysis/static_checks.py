"""Static checks for the T1 failure classes.

Table 1 prescribes *static analysis / model checking* for both T1
deviations, and they are indeed statically visible in component source:

* **FF-T1** (missing synchronization): an ``@unsynchronized`` method that
  reads or writes shared instance state — under the component-testing
  assumption of multiple thread access (Section 1), any such access is a
  potential interference.
* **EF-T1** (unnecessary synchronization): a ``@synchronized`` method that
  touches no shared instance state and neither waits nor notifies — the
  lock buys nothing and only costs contention.

One environment-deviation class is statically visible the same way:

* **EV-INT** (swallowed interrupt): an ``except InterruptedError`` (or
  bare ``except``) handler that neither re-raises nor propagates the
  exception — the classic Java anti-pattern of catching
  ``InterruptedException`` with an empty body, which silently discards
  cancellation requests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Tuple, Type

from repro.classify.taxonomy import FailureClass
from repro.vm.api import MonitorComponent

from .astscan import method_source_ast, scan_method
from .builder import component_methods

__all__ = [
    "StaticFinding",
    "check_component",
    "interrupt_swallowing_handlers",
    "shared_accesses",
]


@dataclass(frozen=True)
class StaticFinding:
    """One static-analysis finding on a component method."""

    component: str
    method: str
    failure_class: FailureClass
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.failure_class.code}] {self.component}.{self.method}: "
            f"{self.detail}"
        )


def shared_accesses(method) -> Tuple[List[str], List[str]]:
    """(reads, writes) of ``self.<field>`` instance attributes in a method,
    excluding underscore-prefixed internals."""
    func, _ = method_source_ast(method)
    self_name = func.args.args[0].arg if func.args.args else "self"
    reads: List[str] = []
    writes: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id != self_name or node.attr.startswith("_"):
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                writes.append(node.attr)
            else:
                reads.append(node.attr)
    return reads, writes


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body can complete without re-raising."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
    return True


def _catches_interrupt(handler: ast.ExceptHandler) -> bool:
    """True when the handler matches ``InterruptedError`` (directly, via a
    tuple, or as a bare/over-broad ``except``)."""
    broad = ("BaseException", "Exception", "InterruptedError")

    def matches(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and expr.id in broad

    if handler.type is None:  # bare except
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(matches(e) for e in handler.type.elts)
    return matches(handler.type)


def interrupt_swallowing_handlers(method) -> List[int]:
    """Line numbers of ``except`` handlers in ``method`` that catch
    ``InterruptedError`` and can complete without re-raising it."""
    func, _ = method_source_ast(method)
    lines: List[int] = []
    for node in ast.walk(func):
        if isinstance(node, ast.ExceptHandler):
            if _catches_interrupt(node) and _handler_swallows(node):
                lines.append(node.lineno)
    return lines


def check_component(
    component: Type[MonitorComponent] | MonitorComponent,
) -> List[StaticFinding]:
    """Run the FF-T1 / EF-T1 / EV-INT static checks on every declared
    method."""
    cls = component if isinstance(component, type) else type(component)
    findings: List[StaticFinding] = []
    for name in component_methods(cls):
        method = getattr(cls, name)
        synchronized = bool(getattr(method, "_vm_synchronized", False))
        reads, writes = shared_accesses(method)
        scan = scan_method(method)
        has_sync_statements = bool(scan.nodes)
        for line in interrupt_swallowing_handlers(method):
            findings.append(
                StaticFinding(
                    component=cls.__name__,
                    method=name,
                    failure_class=FailureClass.EV_INT,
                    detail=(
                        f"except handler at line {line} catches "
                        f"InterruptedError without re-raising: the "
                        f"cancellation request is silently discarded"
                    ),
                )
            )
        if not synchronized and (reads or writes):
            accessed = sorted(set(reads + writes))
            findings.append(
                StaticFinding(
                    component=cls.__name__,
                    method=name,
                    failure_class=FailureClass.FF_T1,
                    detail=(
                        f"unsynchronized access to shared field(s) "
                        f"{accessed}; interference possible under multiple "
                        f"thread access"
                    ),
                )
            )
        if synchronized and not (reads or writes) and not has_sync_statements:
            findings.append(
                StaticFinding(
                    component=cls.__name__,
                    method=name,
                    failure_class=FailureClass.EF_T1,
                    detail=(
                        "synchronized method touches no shared state and "
                        "neither waits nor notifies: unnecessary "
                        "synchronization"
                    ),
                )
            )
    return findings
