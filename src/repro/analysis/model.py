"""Concurrency Flow Graph (CoFG) data model.

Section 6 of the paper: *"To achieve coverage of all concurrent statements,
a Concurrency Flow Graph (CoFG) is constructed. ... The CoFG contains all
statements that cause transitions as described in our model.  Each arc in
the graph is a unique, although possibly overlapping, code region."*

Nodes are the concurrency statements of one method (plus the synthetic
``start``/``end`` of the synchronized block); arcs are the code regions
between pairs of concurrency statements that can execute consecutively.
Every arc carries the sequence of Figure-1 transition firings (T1..T5) the
region exercises — that annotation is what ties CoFG coverage back to the
failure classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["NodeKind", "CoFGNode", "CoFGArc", "CoFG"]


class NodeKind(enum.Enum):
    """Kinds of CoFG nodes.

    START/END are the boundaries of the method's synchronized block; WAIT,
    NOTIFY, and NOTIFY_ALL are the concurrency statements of Section 3.2.
    YIELD marks explicit scheduling points in unsynchronized (faulty)
    components — they fire no Figure-1 transition but still bound regions.
    """

    START = "start"
    WAIT = "wait"
    NOTIFY = "notify"
    NOTIFY_ALL = "notifyAll"
    YIELD = "yield"
    END = "end"


@dataclass(frozen=True)
class CoFGNode:
    """One concurrency statement (or block boundary) of a method.

    Attributes:
        kind: the node kind.
        line: absolute source line of the statement (``None`` for the
            synthetic START/END nodes).
        loop_condition: source text of the enclosing ``while`` condition
            for guarded waits (e.g. ``"self.cur_pos == 0"``), when the
            statement sits directly inside a loop.
        index: disambiguates multiple statements of the same kind on the
            same line (rare, but legal).
    """

    kind: NodeKind
    line: Optional[int] = None
    loop_condition: Optional[str] = None
    index: int = 0

    @property
    def name(self) -> str:
        if self.kind in (NodeKind.START, NodeKind.END):
            return self.kind.value
        suffix = f"@{self.line}" if self.line is not None else f"#{self.index}"
        return f"{self.kind.value}{suffix}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CoFGArc:
    """A code region between two consecutive concurrency statements.

    Attributes:
        src / dst: the bounding nodes.
        transitions: the Figure-1 transition firings the region exercises
            (model-consistent attribution; see ``builder.attribute_arc``).
        guard: human-readable condition under which this region executes
            (e.g. ``"cur_pos == 0 evaluates True on entry"``), best-effort.
        region: (first_line, last_line) of the covered code, best-effort.
    """

    src: CoFGNode
    dst: CoFGNode
    transitions: Tuple[str, ...] = ()
    guard: str = ""
    region: Optional[Tuple[int, int]] = None

    @property
    def name(self) -> str:
        return f"{self.src.name} -> {self.dst.name}"

    def __str__(self) -> str:
        t = ",".join(self.transitions)
        return f"{self.name} [{t}]" if t else self.name


class CoFG:
    """The Concurrency Flow Graph of one component method."""

    def __init__(
        self,
        component: str,
        method: str,
        synchronized: bool,
        nodes: Sequence[CoFGNode],
        arcs: Sequence[CoFGArc],
    ) -> None:
        self.component = component
        self.method = method
        self.synchronized = synchronized
        self.nodes: Tuple[CoFGNode, ...] = tuple(nodes)
        self.arcs: Tuple[CoFGArc, ...] = tuple(arcs)
        self._node_by_name: Dict[str, CoFGNode] = {n.name: n for n in self.nodes}
        self._arc_by_pair: Dict[Tuple[str, str], CoFGArc] = {
            (a.src.name, a.dst.name): a for a in self.arcs
        }

    # -- lookups ---------------------------------------------------------------

    @property
    def start(self) -> CoFGNode:
        return self._node_by_name["start"]

    @property
    def end(self) -> CoFGNode:
        return self._node_by_name["end"]

    def node(self, name: str) -> CoFGNode:
        return self._node_by_name[name]

    def node_at_line(self, kind: NodeKind, line: int) -> Optional[CoFGNode]:
        """The node of ``kind`` at source ``line``, or None."""
        for node in self.nodes:
            if node.kind is kind and node.line == line:
                return node
        return None

    def arc(self, src: str, dst: str) -> Optional[CoFGArc]:
        return self._arc_by_pair.get((src, dst))

    def arcs_from(self, src: str) -> List[CoFGArc]:
        return [a for a in self.arcs if a.src.name == src]

    def arcs_into(self, dst: str) -> List[CoFGArc]:
        return [a for a in self.arcs if a.dst.name == dst]

    def wait_nodes(self) -> List[CoFGNode]:
        return [n for n in self.nodes if n.kind is NodeKind.WAIT]

    def notify_nodes(self) -> List[CoFGNode]:
        return [
            n for n in self.nodes if n.kind in (NodeKind.NOTIFY, NodeKind.NOTIFY_ALL)
        ]

    # -- structure checks --------------------------------------------------------

    def is_isomorphic_to(self, other: "CoFG") -> bool:
        """True when the two graphs have the same shape: equal multisets of
        (src_kind, dst_kind, transitions) arcs.  The paper observes the
        CoFGs of ``send`` and ``receive`` are identical in this sense."""
        key = lambda a: (a.src.kind.value, a.dst.kind.value, a.transitions)  # noqa: E731
        return sorted(map(key, self.arcs)) == sorted(map(key, other.arcs))

    def __len__(self) -> int:
        return len(self.arcs)

    def __repr__(self) -> str:
        return (
            f"CoFG({self.component}.{self.method}, nodes={len(self.nodes)}, "
            f"arcs={len(self.arcs)})"
        )

    def describe(self) -> str:
        """Multi-line human-readable listing (used by the Figure-3 bench)."""
        lines = [f"CoFG for {self.component}.{self.method}:"]
        for i, arc in enumerate(self.arcs, 1):
            guard = f"  [{arc.guard}]" if arc.guard else ""
            firing = ", ".join(arc.transitions) or "-"
            lines.append(f"  {i}. {arc.src.name} -> {arc.dst.name}: {firing}{guard}")
        return "\n".join(lines)
