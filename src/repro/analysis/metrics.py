"""CoFG complexity metrics.

Section 7: *"Complexity is significantly reduced by focussing on
concurrent components rather than entire systems."*  These metrics make
that claim measurable: per-method and per-component CoFG sizes, the
coverage obligation (number of arcs a tester must exercise), and the
contrast with a whole-system product construction, whose obligation grows
multiplicatively with the number of client threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Dict, List, Type

from repro.vm.api import MonitorComponent

from .builder import build_all_cofgs
from .model import CoFG, NodeKind

__all__ = ["MethodMetrics", "ComponentMetrics", "component_metrics"]


@dataclass(frozen=True)
class MethodMetrics:
    """Size measures of one method's CoFG."""

    method: str
    synchronized: bool
    nodes: int
    arcs: int
    wait_statements: int
    notify_statements: int
    loop_arcs: int  # self-arcs (the re-wait regions, the coverage tail)
    guarded_arcs: int

    @property
    def coverage_obligation(self) -> int:
        """Arcs a test suite must exercise for this method."""
        return self.arcs


@dataclass(frozen=True)
class ComponentMetrics:
    """Aggregate CoFG metrics of one component."""

    component: str
    methods: tuple
    total_arcs: int
    total_wait_statements: int
    total_notify_statements: int

    def method(self, name: str) -> MethodMetrics:
        for metrics in self.methods:
            if metrics.method == name:
                return metrics
        raise KeyError(name)

    def whole_system_obligation(self, n_threads: int) -> int:
        """The coverage obligation of a naive whole-system model: each of
        ``n_threads`` client threads may be at any of the component's arcs
        simultaneously, so interleaving states multiply (arcs ** threads).
        The component view keeps it additive — the Section-7 claim."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return self.total_arcs**n_threads

    def describe(self) -> str:
        lines = [
            f"CoFG metrics for {self.component}: {self.total_arcs} arcs, "
            f"{self.total_wait_statements} waits, "
            f"{self.total_notify_statements} notifies"
        ]
        for metrics in self.methods:
            lines.append(
                f"  {metrics.method}: {metrics.arcs} arcs "
                f"({metrics.loop_arcs} loop, {metrics.guarded_arcs} guarded), "
                f"{metrics.wait_statements}w/{metrics.notify_statements}n"
            )
        return "\n".join(lines)


def _method_metrics(name: str, cofg: CoFG) -> MethodMetrics:
    waits = len(cofg.wait_nodes())
    notifies = len(cofg.notify_nodes())
    loops = sum(1 for a in cofg.arcs if a.src == a.dst)
    guarded = sum(1 for a in cofg.arcs if a.guard)
    return MethodMetrics(
        method=name,
        synchronized=cofg.synchronized,
        nodes=len(cofg.nodes),
        arcs=len(cofg.arcs),
        wait_statements=waits,
        notify_statements=notifies,
        loop_arcs=loops,
        guarded_arcs=guarded,
    )


def component_metrics(
    component: Type[MonitorComponent] | MonitorComponent,
) -> ComponentMetrics:
    """Compute CoFG metrics for every declared method of ``component``."""
    cofgs = build_all_cofgs(component)
    cls = component if isinstance(component, type) else type(component)
    per_method = tuple(
        _method_metrics(name, cofg) for name, cofg in cofgs.items()
    )
    return ComponentMetrics(
        component=cls.__name__,
        methods=per_method,
        total_arcs=sum(m.arcs for m in per_method),
        total_wait_statements=sum(m.wait_statements for m in per_method),
        total_notify_statements=sum(m.notify_statements for m in per_method),
    )
