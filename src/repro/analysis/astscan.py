"""AST scanning: locate concurrency statements in component methods.

The paper constructs CoFGs from the Java source of a component.  Here the
component source is Python (the ``yield Wait()`` idiom of ``repro.vm.api``),
so the scan walks the method's ``ast`` looking for ``yield`` expressions
whose value is a call to one of the syscall constructors ``Wait``,
``Notify``, ``NotifyAll`` (and ``Yield`` for explicit scheduling points).

The scanner also performs the control-flow walk that the CoFG builder
needs: for every concurrency statement it computes the set of concurrency
statements (or the method START) that can *immediately precede* it on some
execution path with no other concurrency statement in between — exactly
the paper's "code regions between all pairs of concurrent statements".
Each predecessor is tracked together with the branch condition that path
took, so arcs carry guards like the paper's *"the while condition on
iteration of the loop must evaluate to true"*.

Supported control flow: sequences, ``if``/``elif``/``else``, ``while``
(including ``while True``), ``for``, ``break``, ``continue``, ``return``,
``try``/``except``/``finally``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .model import CoFGNode, NodeKind

__all__ = ["ScanResult", "scan_method", "method_source_ast", "SYSCALL_NODE_KINDS"]

#: syscall constructor name -> CoFG node kind
SYSCALL_NODE_KINDS: Dict[str, NodeKind] = {
    "Wait": NodeKind.WAIT,
    "Notify": NodeKind.NOTIFY,
    "NotifyAll": NodeKind.NOTIFY_ALL,
    "Yield": NodeKind.YIELD,
}

# A frontier entry: (predecessor node name, guard accumulated on this path).
_Entry = Tuple[str, str]


@dataclass
class ScanResult:
    """Outcome of scanning one method.

    Attributes:
        nodes: concurrency-statement nodes in source order (START/END not
            included — the builder adds them).
        edges: pairs ``(pred, succ)`` of node *names* in the region
            relation, with START/END as the sentinels ``"start"``/``"end"``.
        guards: per-edge human-readable execution condition.
        first_line / last_line: extent of the method body.
    """

    nodes: List[CoFGNode] = field(default_factory=list)
    edges: List[Tuple[str, str]] = field(default_factory=list)
    guards: Dict[Tuple[str, str], str] = field(default_factory=dict)
    first_line: int = 0
    last_line: int = 0


def method_source_ast(method: Callable) -> Tuple[ast.FunctionDef, int]:
    """Parse a method into an AST with *absolute* line numbers.

    Accepts either a plain function or a ``@synchronized``/``@unsynchronized``
    wrapper (the original is recovered from ``_vm_source_method``).
    """
    original = getattr(method, "_vm_source_method", method)
    original = inspect.unwrap(original)
    source = inspect.getsource(original)
    first_line = original.__code__.co_firstlineno
    dedented = textwrap.dedent(source)
    tree = ast.parse(dedented)
    func = tree.body[0]
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise ValueError(f"cannot locate function definition for {method!r}")
    # co_firstlineno (and getsource) start at the first decorator when one
    # is present, while FunctionDef.lineno points at the ``def`` itself —
    # align whichever anchor the source actually starts with.
    anchor = func.decorator_list[0].lineno if func.decorator_list else func.lineno
    ast.increment_lineno(func, first_line - anchor)
    return func, first_line


def _syscall_kind(expr: ast.expr) -> Optional[Tuple[NodeKind, Optional[str]]]:
    """If ``expr`` is ``Yield(Call(Wait|Notify|NotifyAll|Yield, ...))``,
    return (kind, monitor_arg_source); else None."""
    if not isinstance(expr, ast.Yield) or expr.value is None:
        return None
    call = expr.value
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    kind = SYSCALL_NODE_KINDS.get(name)
    if kind is None:
        return None
    monitor = ast.unparse(call.args[0]) if call.args else None
    return kind, monitor


def _with_guard(entries: Set[_Entry], guard: str) -> Set[_Entry]:
    """Attach ``guard`` to entries that do not already carry one."""
    return {(name, g if g else guard) for name, g in entries}


def _replace_guard(entries: Set[_Entry], guard: str) -> Set[_Entry]:
    return {(name, guard) for name, _ in entries}


class _Scanner:
    """Recursive control-flow walk computing the region relation."""

    def __init__(self) -> None:
        self.result = ScanResult()
        self._nodes_by_loc: Dict[Tuple[NodeKind, int], CoFGNode] = {}
        self._loop_stack: List[Dict[str, Set[_Entry]]] = []

    def _add_node(
        self, kind: NodeKind, line: int, loop_cond: Optional[str]
    ) -> CoFGNode:
        # The loop fixpoint walks a body twice; the same source statement
        # must map to the same node, so nodes are keyed by (kind, line).
        existing = self._nodes_by_loc.get((kind, line))
        if existing is not None:
            return existing
        node = CoFGNode(kind, line, loop_cond, 0)
        self._nodes_by_loc[(kind, line)] = node
        self.result.nodes.append(node)
        return node

    def _edge(self, pred: str, succ: str, guard: str) -> None:
        pair = (pred, succ)
        if pair not in self.result.guards:
            self.result.edges.append(pair)
            self.result.guards[pair] = guard
        elif guard and not self.result.guards[pair]:
            self.result.guards[pair] = guard

    def _connect(self, entries: Set[_Entry], succ: str) -> None:
        for pred, guard in sorted(entries):
            self._edge(pred, succ, guard)

    def scan_statements(
        self,
        statements: Sequence[ast.stmt],
        frontier: Set[_Entry],
        loop_cond: Optional[str],
    ) -> Tuple[Set[_Entry], bool]:
        """Walk a statement list.

        Returns ``(exit_frontier, falls_through)``: the guard-carrying
        frontier at the end of the list and whether control can reach past
        it (False after an unconditional return/break/continue).
        """
        current = set(frontier)
        for statement in statements:
            if isinstance(statement, ast.Expr):
                found = _syscall_kind(statement.value)
                if found is not None:
                    kind, _monitor = found
                    node = self._add_node(kind, statement.lineno, loop_cond)
                    self._connect(current, node.name)
                    current = {(node.name, "")}
                continue
            if isinstance(statement, ast.Return):
                self._connect(current, "end")
                return set(), False
            if isinstance(statement, ast.Break):
                if self._loop_stack:
                    self._loop_stack[-1]["break"] |= current
                return set(), False
            if isinstance(statement, ast.Continue):
                if self._loop_stack:
                    self._loop_stack[-1]["continue"] |= current
                return set(), False
            if isinstance(statement, ast.If):
                condition = ast.unparse(statement.test)
                then_out, then_falls = self.scan_statements(
                    statement.body,
                    _with_guard(current, f"{condition} is True"),
                    loop_cond,
                )
                if statement.orelse:
                    else_out, else_falls = self.scan_statements(
                        statement.orelse,
                        _with_guard(current, f"{condition} is False"),
                        loop_cond,
                    )
                else:
                    else_out, else_falls = (
                        _with_guard(current, f"{condition} is False"),
                        True,
                    )
                current = (then_out if then_falls else set()) | (
                    else_out if else_falls else set()
                )
                if not then_falls and not else_falls:
                    return set(), False
                continue
            if isinstance(statement, (ast.While, ast.For)):
                exited = self._scan_loop(statement, current)
                current = exited
                continue
            if isinstance(statement, ast.Try):
                body_out, body_falls = self.scan_statements(
                    statement.body, current, loop_cond
                )
                merged = body_out if body_falls else set()
                for handler in statement.handlers:
                    handler_out, handler_falls = self.scan_statements(
                        handler.body, current | body_out, loop_cond
                    )
                    if handler_falls:
                        merged |= handler_out
                if statement.finalbody:
                    merged, fin_falls = self.scan_statements(
                        statement.finalbody, merged or current, loop_cond
                    )
                    if not fin_falls:
                        return set(), False
                current = merged if (merged or statement.finalbody) else current
                continue
            # Plain computation: does not interrupt the region.
        return current, True

    def _scan_loop(
        self, loop: ast.While | ast.For, frontier: Set[_Entry]
    ) -> Set[_Entry]:
        """Walk a loop to a region fixpoint (two passes: the second adds
        the back-edge regions such as wait -> wait)."""
        if isinstance(loop, ast.While):
            condition = ast.unparse(loop.test)
            is_infinite = (
                isinstance(loop.test, ast.Constant) and bool(loop.test.value)
            )
        else:
            condition = f"iterating {ast.unparse(loop.iter)}"
            is_infinite = False
        self._loop_stack.append({"break": set(), "continue": set()})
        entry = _with_guard(frontier, f"{condition} is True on entry")
        body_out, body_falls = self.scan_statements(loop.body, entry, condition)
        frame = self._loop_stack[-1]
        back = (body_out if body_falls else set()) | frame["continue"]
        if back:
            iterate = _replace_guard(back, f"{condition} is True on iteration")
            body_out2, body_falls2 = self.scan_statements(
                loop.body, iterate, condition
            )
            if body_falls2:
                body_out |= body_out2
        frame = self._loop_stack.pop()
        exits: Set[_Entry] = set(frame["break"])
        if not is_infinite:
            # Zero iterations (condition false on entry) or exit after some
            # complete iteration (condition false on re-test).
            exits |= _with_guard(frontier, f"{condition} is False")
            if body_falls or frame["continue"]:
                after = (body_out if body_falls else set()) | frame["continue"]
                exits |= _replace_guard(after, f"{condition} is False")
        if loop.orelse:
            else_out, else_falls = self.scan_statements(
                loop.orelse, exits or frontier, None
            )
            exits = (else_out if else_falls else set()) | frame["break"]
        return exits


def scan_method(method: Callable) -> ScanResult:
    """Scan one component method, returning its concurrency statements and
    the guarded region (immediate-successor) relation."""
    func, _ = method_source_ast(method)
    scanner = _Scanner()
    frontier, falls = scanner.scan_statements(func.body, {("start", "")}, None)
    if falls:
        scanner._connect(frontier, "end")
    result = scanner.result
    result.first_line = func.body[0].lineno if func.body else func.lineno
    result.last_line = max(
        (getattr(s, "end_lineno", s.lineno) or s.lineno) for s in func.body
    )
    return result
